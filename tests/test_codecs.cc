// Round-trip and behaviour tests for every baseline codec (Gorilla, Chimp,
// Chimp128, Patas, Elf, PDE, Zstd/LZ) plus the ALP adapter, parameterized
// over codecs x workload shapes so each scheme faces identical inputs.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <random>
#include <vector>

#include "codecs/codec.h"
#include "codecs/lz.h"
#include "util/bits.h"

namespace alp::codecs {
namespace {

using Factory = std::unique_ptr<DoubleCodec> (*)();

std::vector<double> MakeWorkload(int shape, size_t n) {
  std::mt19937_64 rng(shape * 1000 + 7);
  std::vector<double> data(n);
  switch (shape) {
    case 0:  // Decimal prices.
      for (auto& v : data) {
        v = static_cast<double>(static_cast<int64_t>(rng() % 1000000)) / 100.0;
      }
      break;
    case 1: {  // Smooth time series.
      double cur = 20.0;
      for (auto& v : data) {
        cur += (static_cast<double>(rng() % 2001) - 1000.0) / 1000.0;
        v = std::round(cur * 10.0) / 10.0;
      }
      break;
    }
    case 2:  // Full-entropy reals.
      for (auto& v : data) v = static_cast<double>(rng() >> 11) * 0x1.0p-53;
      break;
    case 3: {  // Heavy duplicates with runs.
      double run_value = 1.25;
      size_t run_left = 0;
      for (auto& v : data) {
        if (run_left == 0) {
          run_value = static_cast<double>(static_cast<int64_t>(rng() % 10000)) / 100.0;
          run_left = 1 + rng() % 20;
        }
        v = run_value;
        --run_left;
      }
      break;
    }
    case 4:  // Special values sprinkled into decimals.
      for (size_t i = 0; i < n; ++i) {
        switch (i % 97) {
          case 0:
            data[i] = std::numeric_limits<double>::quiet_NaN();
            break;
          case 1:
            data[i] = std::numeric_limits<double>::infinity();
            break;
          case 2:
            data[i] = -0.0;
            break;
          case 3:
            data[i] = std::numeric_limits<double>::denorm_min();
            break;
          default:
            data[i] = static_cast<double>(static_cast<int64_t>(rng() % 100000)) / 10.0;
        }
      }
      break;
    default:  // Integers as doubles.
      for (auto& v : data) v = static_cast<double>(rng() % 100000);
      break;
  }
  return data;
}

class CodecRoundTripTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CodecRoundTripTest, BitExact) {
  static const Factory kFactories[] = {&MakeGorilla, &MakeChimp, &MakeChimp128,
                                       &MakePatas,   &MakeElf,   &MakePde,
                                       &MakeZstd,    &MakeLz,    &MakeAlpCodec,
                                       &MakeAlpRdCodec, &MakeFpc};
  const auto codec = kFactories[std::get<0>(GetParam())]();
  const int shape = std::get<1>(GetParam());
  const size_t n = shape == 2 ? 4096 : 20000;  // Elf is slow on entropy data.
  const auto data = MakeWorkload(shape, n);

  const auto compressed = codec->Compress(data.data(), data.size());
  std::vector<double> out(data.size(), -777.0);
  codec->Decompress(compressed.data(), compressed.size(), data.size(), out.data());
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(BitsOf(out[i]), BitsOf(data[i]))
        << codec->name() << " shape=" << shape << " index=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecsAllShapes, CodecRoundTripTest,
                         ::testing::Combine(::testing::Range(0, 11),
                                            ::testing::Range(0, 6)));

class CodecEdgeTest : public ::testing::TestWithParam<int> {};

TEST_P(CodecEdgeTest, EmptyInput) {
  static const Factory kFactories[] = {&MakeGorilla, &MakeChimp, &MakeChimp128,
                                       &MakePatas,   &MakeElf,   &MakePde,
                                       &MakeZstd,    &MakeLz,    &MakeAlpCodec,
                                       &MakeFpc};
  const auto codec = kFactories[GetParam()]();
  const auto compressed = codec->Compress(nullptr, 0);
  codec->Decompress(compressed.data(), compressed.size(), 0, nullptr);
  SUCCEED();
}

TEST_P(CodecEdgeTest, SingleValue) {
  static const Factory kFactories[] = {&MakeGorilla, &MakeChimp, &MakeChimp128,
                                       &MakePatas,   &MakeElf,   &MakePde,
                                       &MakeZstd,    &MakeLz,    &MakeAlpCodec,
                                       &MakeFpc};
  const auto codec = kFactories[GetParam()]();
  const double v = -273.15;
  const auto compressed = codec->Compress(&v, 1);
  double out = 0;
  codec->Decompress(compressed.data(), compressed.size(), 1, &out);
  EXPECT_EQ(BitsOf(out), BitsOf(v)) << codec->name();
}

TEST_P(CodecEdgeTest, AllIdenticalValues) {
  static const Factory kFactories[] = {&MakeGorilla, &MakeChimp, &MakeChimp128,
                                       &MakePatas,   &MakeElf,   &MakePde,
                                       &MakeZstd,    &MakeLz,    &MakeAlpCodec,
                                       &MakeFpc};
  const auto codec = kFactories[GetParam()]();
  const std::vector<double> data(10000, 9.875);
  const auto compressed = codec->Compress(data.data(), data.size());
  std::vector<double> out(data.size());
  codec->Decompress(compressed.data(), compressed.size(), data.size(), out.data());
  for (double o : out) ASSERT_EQ(BitsOf(o), BitsOf(9.875));
  // Identical values must compress below raw (Patas pays a fixed 16-bit
  // packet per value, the loosest of the family).
  EXPECT_LT(compressed.size() * 8.0 / data.size(), 17.0) << codec->name();
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecEdgeTest, ::testing::Range(0, 10));

TEST(CodecRegistry, NamesMatchPaperTables) {
  const auto codecs = AllDoubleCodecs();
  ASSERT_EQ(codecs.size(), 8u);
  EXPECT_EQ(codecs[0]->name(), "Gorilla");
  EXPECT_EQ(codecs[1]->name(), "Chimp");
  EXPECT_EQ(codecs[2]->name(), "Chimp128");
  EXPECT_EQ(codecs[3]->name(), "Patas");
  EXPECT_EQ(codecs[4]->name(), "PDE");
  EXPECT_EQ(codecs[5]->name(), "Elf");
  EXPECT_EQ(codecs[6]->name(), "ALP");
  EXPECT_EQ(codecs[7]->name(), "Zstd");
}

TEST(CodecRegistry, FloatCodecsRoundTrip) {
  std::mt19937_64 rng(11);
  std::vector<float> data(8192);
  for (auto& v : data) {
    v = static_cast<float>((static_cast<double>(rng() >> 11) * 0x1.0p-53 - 0.5) * 0.04);
  }
  for (const auto& codec : AllFloatCodecs()) {
    const auto compressed = codec->Compress(data.data(), data.size());
    std::vector<float> out(data.size());
    codec->Decompress(compressed.data(), compressed.size(), data.size(), out.data());
    for (size_t i = 0; i < data.size(); ++i) {
      ASSERT_EQ(BitsOf(out[i]), BitsOf(data[i])) << codec->name() << " " << i;
    }
  }
}

TEST(Gorilla, RepeatedValuesCostOneBit) {
  const std::vector<double> data(10001, 5.5);
  const auto codec = MakeGorilla();
  const auto compressed = codec->Compress(data.data(), data.size());
  // 64 bits header + ~1 bit per repeat.
  EXPECT_LE(compressed.size(), 8 + 10000 / 8 + 16);
}

TEST(Patas, ByteAlignedOutput) {
  // Patas output is byte-structured: 8-byte header + >= 2 bytes per value.
  std::mt19937_64 rng(13);
  std::vector<double> data(1000);
  for (auto& v : data) v = static_cast<double>(rng() % 1000) / 10.0;
  const auto codec = MakePatas();
  const auto compressed = codec->Compress(data.data(), data.size());
  EXPECT_GE(compressed.size(), 8u + 2u * (data.size() - 1));
}

TEST(Elf, BeatsGorillaOnDecimalData) {
  const auto data = MakeWorkload(0, 20000);
  const auto elf = MakeElf()->Compress(data.data(), data.size());
  const auto gorilla = MakeGorilla()->Compress(data.data(), data.size());
  EXPECT_LT(elf.size(), gorilla.size());
}

TEST(Pde, EncodesDecimalsCompactly) {
  const auto data = MakeWorkload(0, 20000);
  const auto codec = MakePde();
  const auto compressed = codec->Compress(data.data(), data.size());
  EXPECT_LT(compressed.size() * 8.0 / data.size(), 40.0);
}

TEST(Fpc, PredictsSmoothSeries) {
  // A smooth series is exactly what FCM/DFCM predict well: the compressed
  // size must land well below raw.
  std::vector<double> data(50000);
  double cur = 100.0;
  std::mt19937_64 rng(23);
  for (auto& v : data) {
    cur += (static_cast<double>(rng() % 200) - 100.0) / 100.0;
    v = cur;
  }
  const auto codec = MakeFpc();
  const auto compressed = codec->Compress(data.data(), data.size());
  EXPECT_LT(compressed.size(), data.size() * 8);
  std::vector<double> out(data.size());
  codec->Decompress(compressed.data(), compressed.size(), data.size(), out.data());
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(BitsOf(out[i]), BitsOf(data[i]));
  }
}

TEST(Fpc, HeaderCodeMapping) {
  // Odd count exercises the half-filled trailing header byte.
  std::vector<double> data(777, 1.5);
  data[5] = -2.25;
  const auto codec = MakeFpc();
  const auto compressed = codec->Compress(data.data(), data.size());
  std::vector<double> out(data.size());
  codec->Decompress(compressed.data(), compressed.size(), data.size(), out.data());
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(BitsOf(out[i]), BitsOf(data[i]));
  }
}

TEST(Lz, RawBytesRoundTrip) {
  std::mt19937_64 rng(17);
  std::vector<uint8_t> data(100000);
  // Compressible: repeated phrases with noise.
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>((i % 251) ^ ((i / 1000) % 7));
  }
  const auto compressed = lz::CompressBytes(data.data(), data.size());
  EXPECT_LT(compressed.size(), data.size());
  std::vector<uint8_t> out(data.size());
  lz::DecompressBytes(compressed.data(), compressed.size(), out.data(), out.size());
  EXPECT_EQ(out, data);
}

TEST(Lz, IncompressibleBytesRoundTrip) {
  std::mt19937_64 rng(19);
  std::vector<uint8_t> data(50000);
  for (auto& b : data) b = static_cast<uint8_t>(rng());
  const auto compressed = lz::CompressBytes(data.data(), data.size());
  std::vector<uint8_t> out(data.size());
  lz::DecompressBytes(compressed.data(), compressed.size(), out.data(), out.size());
  EXPECT_EQ(out, data);
}

TEST(Lz, OverlappingMatchSemantics) {
  // "aaaa..." forces matches with offset < length.
  std::vector<uint8_t> data(10000, 'a');
  const auto compressed = lz::CompressBytes(data.data(), data.size());
  EXPECT_LT(compressed.size(), 200u);
  std::vector<uint8_t> out(data.size());
  lz::DecompressBytes(compressed.data(), compressed.size(), out.data(), out.size());
  EXPECT_EQ(out, data);
}

TEST(Zstd, ReportsBinding) {
  // Informational: on this host the real library should be bound.
  const auto codec = MakeZstd();
  EXPECT_EQ(codec->name(), "Zstd");
  (void)ZstdIsReal();
}

}  // namespace
}  // namespace alp::codecs
