// Tests for the file helpers used by the CLI: binary and text double
// files, byte buffers, and failure paths.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "util/bits.h"
#include "util/file_io.h"

namespace alp {
namespace {

std::string TempPath(const char* suffix) {
  // The counter alone is not unique across processes: ctest runs each test
  // of this binary as its own process, all starting at 0, and parallel
  // FileIo tests then race on one path. Scope the name by PID.
  static int counter = 0;
  return testing::TempDir() + "/alp_file_io_" + std::to_string(::getpid()) +
         "_" + std::to_string(counter++) + suffix;
}

TEST(FileIo, IsTextPath) {
  EXPECT_TRUE(IsTextPath("data.csv"));
  EXPECT_TRUE(IsTextPath("data.txt"));
  EXPECT_FALSE(IsTextPath("data.bin"));
  EXPECT_FALSE(IsTextPath("data.alp"));
  EXPECT_FALSE(IsTextPath("csv"));
}

TEST(FileIo, BytesRoundTrip) {
  const std::string path = TempPath(".alp");
  std::vector<uint8_t> bytes(1000);
  for (size_t i = 0; i < bytes.size(); ++i) bytes[i] = static_cast<uint8_t>(i * 7);
  ASSERT_TRUE(WriteFileBytes(path, bytes.data(), bytes.size()));
  const auto read = ReadFileBytes(path);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(*read, bytes);
  std::remove(path.c_str());
}

TEST(FileIo, EmptyBytes) {
  const std::string path = TempPath(".alp");
  ASSERT_TRUE(WriteFileBytes(path, nullptr, 0));
  const auto read = ReadFileBytes(path);
  ASSERT_TRUE(read.has_value());
  EXPECT_TRUE(read->empty());
  std::remove(path.c_str());
}

TEST(FileIo, MissingFileFails) {
  EXPECT_FALSE(ReadFileBytes("/nonexistent/path/file").has_value());
  EXPECT_FALSE(ReadDoublesFile("/nonexistent/path/file").has_value());
}

TEST(FileIo, BinaryDoublesRoundTrip) {
  const std::string path = TempPath(".bin");
  std::mt19937_64 rng(1);
  std::vector<double> values(5000);
  for (auto& v : values) v = DoubleFromBits(rng());
  ASSERT_TRUE(WriteDoublesFile(path, values.data(), values.size()));
  const auto read = ReadDoublesFile(path);
  ASSERT_TRUE(read.has_value());
  ASSERT_EQ(read->size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(BitsOf((*read)[i]), BitsOf(values[i]));
  }
  std::remove(path.c_str());
}

TEST(FileIo, BinaryWrongSizeRejected) {
  const std::string path = TempPath(".bin");
  const uint8_t bytes[13] = {};
  ASSERT_TRUE(WriteFileBytes(path, bytes, sizeof(bytes)));
  EXPECT_FALSE(ReadDoublesFile(path).has_value());  // Not a multiple of 8.
  std::remove(path.c_str());
}

TEST(FileIo, TextDoublesRoundTripExactly) {
  // to_chars shortest form re-parses to the identical double.
  const std::string path = TempPath(".csv");
  std::mt19937_64 rng(2);
  std::vector<double> values(2000);
  for (auto& v : values) {
    v = static_cast<double>(static_cast<int64_t>(rng() % 1000000)) / 1000.0;
  }
  values[0] = 1.0 / 3.0;  // Full precision.
  values[1] = -0.0;
  values[2] = 1e-300;
  ASSERT_TRUE(WriteDoublesFile(path, values.data(), values.size()));
  const auto read = ReadDoublesFile(path);
  ASSERT_TRUE(read.has_value());
  ASSERT_EQ(read->size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(BitsOf((*read)[i]), BitsOf(values[i])) << i;
  }
  std::remove(path.c_str());
}

TEST(FileIo, TextCommentsAndBlanksSkipped) {
  const std::string path = TempPath(".csv");
  const std::string content = "# header\n1.5\n\n  2.5\n# trailing\n3.5\n";
  ASSERT_TRUE(WriteFileBytes(path, reinterpret_cast<const uint8_t*>(content.data()),
                             content.size()));
  const auto read = ReadDoublesFile(path);
  ASSERT_TRUE(read.has_value());
  ASSERT_EQ(read->size(), 3u);
  EXPECT_EQ((*read)[0], 1.5);
  EXPECT_EQ((*read)[2], 3.5);
  std::remove(path.c_str());
}

TEST(FileIo, TextGarbageRejected) {
  const std::string path = TempPath(".csv");
  const std::string content = "1.5\nnot-a-number\n2.5\n";
  ASSERT_TRUE(WriteFileBytes(path, reinterpret_cast<const uint8_t*>(content.data()),
                             content.size()));
  EXPECT_FALSE(ReadDoublesFile(path).has_value());
  std::remove(path.c_str());
}

TEST(FileIo, ParseFailureNamesLineAndContent) {
  const std::string path = TempPath(".csv");
  const std::string content = "# header\n1.5\nbogus-value\n2.5\n";
  ASSERT_TRUE(WriteFileBytes(path, reinterpret_cast<const uint8_t*>(content.data()),
                             content.size()));
  const auto read = ReadDoublesFileEx(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorrupt);
  EXPECT_EQ(read.status().offset(), 3u);  // 1-based line number.
  EXPECT_NE(read.status().message().find("line 3"), std::string::npos)
      << read.status().message();
  EXPECT_NE(read.status().message().find("bogus-value"), std::string::npos)
      << read.status().message();
  std::remove(path.c_str());
}

TEST(FileIo, MissingFileIsIoStatus) {
  const auto read = ReadDoublesFileEx("/nonexistent/path/file.csv");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIo);
}

TEST(FileIo, OddSizedBinaryIsCorruptStatus) {
  const std::string path = TempPath(".bin");
  const uint8_t bytes[11] = {};
  ASSERT_TRUE(WriteFileBytes(path, bytes, sizeof(bytes)));
  const auto read = ReadDoublesFileEx(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorrupt);
  std::remove(path.c_str());
}

TEST(FileIo, TextFileWithoutTrailingNewline) {
  const std::string path = TempPath(".txt");
  const std::string content = "7.25\n8.5";
  ASSERT_TRUE(WriteFileBytes(path, reinterpret_cast<const uint8_t*>(content.data()),
                             content.size()));
  const auto read = ReadDoublesFile(path);
  ASSERT_TRUE(read.has_value());
  ASSERT_EQ(read->size(), 2u);
  EXPECT_EQ((*read)[1], 8.5);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace alp
