// Parallel rowgroup pipeline: determinism and thread-safety oracles.
//
// The contract under test (see src/alp/column.h "Parallelism"): encode is
// byte-identical at every worker count, decode is value-identical, and a
// corrupt input produces the *same* Status from the serial and parallel
// paths - the lowest-indexed failure wins, exactly what a serial scan hits
// first. The concurrency tests double as the ThreadSanitizer workload for
// the ALP_SANITIZE=thread CI job.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "alp/alp.h"
#include "test_fixtures.h"
#include "util/thread_pool.h"

namespace alp {
namespace {

using testutil::AlpSmall;
using testutil::Corpus;
using testutil::DecimalData;
using testutil::RdSmall;
using testutil::StripToV2;
using testutil::TwoRowgroups;

// ---------------------------------------------------------------------------
// ThreadPool / TaskGroup / ParallelFor substrate.

TEST(ThreadPool, DefaultThreadCountHonoursEnv) {
  ASSERT_EQ(setenv("ALP_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 3u);
  ASSERT_EQ(setenv("ALP_THREADS", "0", 1), 0);  // Non-positive: ignored.
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
  ASSERT_EQ(setenv("ALP_THREADS", "garbage", 1), 0);
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
  ASSERT_EQ(unsetenv("ALP_THREADS"), 0);
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

TEST(ThreadPool, SizeMatchesRequest) {
  for (const unsigned threads : {1u, 2u, 5u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
  }
  ThreadPool defaulted(0);
  EXPECT_GE(defaulted.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(&pool, kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForNullPoolRunsInline) {
  const auto self = std::this_thread::get_id();
  size_t count = 0;
  ParallelFor(nullptr, 64, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), self);
    ++count;  // Unsynchronized on purpose: inline means single-threaded.
  });
  EXPECT_EQ(count, 64u);
}

TEST(ThreadPool, TaskGroupsShareOnePoolIndependently) {
  ThreadPool pool(3);
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  TaskGroup group_a(&pool);
  TaskGroup group_b(&pool);
  for (int i = 0; i < 50; ++i) {
    group_a.Submit([&] { a.fetch_add(1); });
    group_b.Submit([&] { b.fetch_add(1); });
  }
  group_a.Wait();
  EXPECT_EQ(a.load(), 50);  // b may still be in flight; a's batch is done.
  group_b.Wait();
  EXPECT_EQ(b.load(), 50);
}

TEST(ThreadPool, SubmittersOnManyThreadsDontInterfere) {
  ThreadPool pool(2);
  constexpr int kSubmitters = 4;
  constexpr int kTasks = 200;
  std::atomic<int> total{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      TaskGroup group(&pool);
      for (int i = 0; i < kTasks; ++i) {
        group.Submit([&] { total.fetch_add(1); });
      }
      group.Wait();
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(total.load(), kSubmitters * kTasks);
}

// ---------------------------------------------------------------------------
// Shutdown semantics: tasks queued before Shutdown are drained, tasks
// submitted after run inline in the submitter (never dropped, never hung),
// and the first worker-task failure surfaces from Wait()/first_failure().

TEST(ThreadPool, ShutdownDrainsQueuedTasks) {
  // Every task enqueued before Shutdown must run exactly once even when the
  // queue is deep relative to the worker count.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    TaskGroup group(&pool);
    for (int i = 0; i < 500; ++i) {
      group.Submit([&] { ran.fetch_add(1); });
    }
    group.Wait();
    pool.Shutdown();  // Idempotent with the destructor's call.
  }
  EXPECT_EQ(ran.load(), 500);
}

TEST(ThreadPool, SubmitAfterShutdownRunsInlineDeterministically) {
  ThreadPool pool(2);
  pool.Shutdown();
  const auto self = std::this_thread::get_id();
  std::atomic<int> ran{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 8; ++i) {
    group.Submit([&] {
      EXPECT_EQ(std::this_thread::get_id(), self);  // Inline fallback.
      ran.fetch_add(1);
    });
  }
  group.Wait();  // Must not hang: inline tasks already decremented pending.
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, WorkerTaskFailureSurfacesOnWait) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    group.Submit([&, i] {
      ran.fetch_add(1);
      if (i == 7) throw std::runtime_error("task 7 failed");
    });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 16);  // A failure never halts sibling tasks.
  EXPECT_NE(pool.first_failure(), nullptr);
  // Wait() rethrows once and clears: the group is reusable afterwards.
  group.Submit([&] { ran.fetch_add(1); });
  group.Wait();
  EXPECT_EQ(ran.load(), 17);
}

TEST(ThreadPool, DestructorSafeWithFailedTasks) {
  // A TaskGroup destroyed without Wait() after a failure must not
  // std::terminate (WaitNoThrow path).
  ThreadPool pool(2);
  {
    TaskGroup group(&pool);
    group.Submit([] { throw std::runtime_error("unobserved"); });
  }
  EXPECT_NE(pool.first_failure(), nullptr);
}

// ---------------------------------------------------------------------------
// TrySubmit: the bounded, non-blocking submission the out-of-core
// prefetcher rides on. Saturation is a *refusal* the caller can degrade on
// (synchronous reads), never unbounded queue growth; an accepted task is
// guaranteed to run even across Shutdown.

TEST(ThreadPool, TrySubmitRefusesAtQueueLimitLeavingTaskUntouched) {
  ThreadPool pool(1);
  // Park the lone worker so queued tasks cannot drain while we probe the
  // bound.
  std::mutex gate;
  gate.lock();
  TaskGroup blocker(&pool);
  blocker.Submit([&gate] { std::lock_guard<std::mutex> hold(gate); });
  // The blocker is *running* (or about to), not queued: wait until the
  // queue is empty so the bound below is exact.
  while (pool.queue_depth() != 0) std::this_thread::yield();

  std::atomic<int> ran{0};
  std::function<void()> task = [&ran] { ran.fetch_add(1); };
  // Bound of 2: two accepted, the third refused.
  EXPECT_TRUE(pool.TrySubmit(&task, 2));
  task = [&ran] { ran.fetch_add(1); };
  EXPECT_TRUE(pool.TrySubmit(&task, 2));
  EXPECT_EQ(pool.queue_depth(), 2u);
  task = [&ran] { ran.fetch_add(100); };
  EXPECT_FALSE(pool.TrySubmit(&task, 2));
  // The refusal left the task intact: the caller still owns it and can run
  // it inline — exactly the prefetcher's degrade-to-synchronous move.
  ASSERT_NE(task, nullptr);
  task();
  EXPECT_EQ(ran.load(), 100);

  gate.unlock();
  blocker.Wait();
  pool.Shutdown();  // Drains the two accepted tasks before joining.
  EXPECT_EQ(ran.load(), 102);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPool, TrySubmitRefusesAfterShutdown) {
  ThreadPool pool(2);
  pool.Shutdown();
  bool ran = false;
  std::function<void()> task = [&ran] { ran = true; };
  EXPECT_FALSE(pool.TrySubmit(&task, 64));
  ASSERT_NE(task, nullptr);  // Untouched; the caller degrades inline.
  task();
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, TrySubmitNeverDeadlocksAgainstConcurrentShutdown) {
  // A prefetcher thread hammering TrySubmit while the pool shuts down: no
  // deadlock, no dropped accepted task. Every accepted submission runs
  // (shutdown drains), every refusal stays with the submitter.
  for (int round = 0; round < 8; ++round) {
    std::atomic<int> accepted{0};
    std::atomic<int> executed{0};
    std::atomic<bool> stop{false};
    auto pool = std::make_unique<ThreadPool>(2);
    std::thread submitter([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::function<void()> task = [&executed] { executed.fetch_add(1); };
        if (pool->TrySubmit(&task, 16)) {
          accepted.fetch_add(1);
        } else {
          ASSERT_NE(task, nullptr);
          task();  // Inline fallback, counted the same.
          executed.fetch_sub(1);
        }
      }
    });
    pool->Shutdown();
    stop.store(true);
    submitter.join();
    pool.reset();  // Destructor re-runs (idempotent) Shutdown.
    EXPECT_EQ(executed.load(), accepted.load()) << "round " << round;
  }
}

TEST(ThreadPool, QueueDepthTracksOutstandingTasks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.queue_depth(), 0u);
  std::mutex gate;
  gate.lock();
  TaskGroup blocker(&pool);
  blocker.Submit([&gate] { std::lock_guard<std::mutex> hold(gate); });
  while (pool.queue_depth() != 0) std::this_thread::yield();
  std::atomic<int> ran{0};
  for (size_t i = 1; i <= 3; ++i) {
    std::function<void()> task = [&ran] { ran.fetch_add(1); };
    ASSERT_TRUE(pool.TrySubmit(&task, 8));
    EXPECT_EQ(pool.queue_depth(), i);
  }
  gate.unlock();
  blocker.Wait();
  while (pool.queue_depth() != 0) std::this_thread::yield();
  while (ran.load() != 3) std::this_thread::yield();
}

// ---------------------------------------------------------------------------
// Encode determinism: byte-identical at every worker count.

void ExpectInfoEqual(const CompressionInfo& a, const CompressionInfo& b) {
  EXPECT_EQ(a.rowgroups, b.rowgroups);
  EXPECT_EQ(a.rowgroups_rd, b.rowgroups_rd);
  EXPECT_EQ(a.vectors, b.vectors);
  EXPECT_EQ(a.exceptions, b.exceptions);
  EXPECT_EQ(a.sampler.vectors, b.sampler.vectors);
  EXPECT_EQ(a.sampler.vectors_skipped, b.sampler.vectors_skipped);
  EXPECT_EQ(a.sampler.combinations_tried, b.sampler.combinations_tried);
  for (size_t t = 0; t < 8; ++t) {
    EXPECT_EQ(a.sampler.tried_histogram[t], b.sampler.tried_histogram[t]) << t;
  }
}

TEST(ParallelEncode, ByteIdenticalAcrossThreadCounts) {
  for (const Corpus* corpus : {&AlpSmall(), &RdSmall(), &TwoRowgroups()}) {
    SCOPED_TRACE(corpus->name);
    CompressionInfo serial_info;
    const std::vector<uint8_t> serial = CompressColumn(
        corpus->values.data(), corpus->values.size(), {}, &serial_info);

    // Null pool: the documented serial fallback.
    CompressionInfo inline_info;
    EXPECT_EQ(CompressColumnParallel(corpus->values.data(),
                                     corpus->values.size(), {}, &inline_info,
                                     nullptr),
              serial);
    ExpectInfoEqual(inline_info, serial_info);

    for (const unsigned threads : {1u, 2u, 8u}) {
      ThreadPool pool(threads);
      CompressionInfo info;
      const std::vector<uint8_t> parallel = CompressColumnParallel(
          corpus->values.data(), corpus->values.size(), {}, &info, &pool);
      EXPECT_EQ(parallel, serial) << threads << " threads";
      ExpectInfoEqual(info, serial_info);
    }
  }
}

TEST(ParallelEncode, ManyRowgroupsByteIdentical) {
  // Enough rowgroups that an 8-thread pool genuinely interleaves them.
  const std::vector<double> values = DecimalData(707, 5 * kRowgroupSize + 321);
  const std::vector<uint8_t> serial =
      CompressColumn(values.data(), values.size());
  ThreadPool pool(8);
  EXPECT_EQ(
      CompressColumnParallel(values.data(), values.size(), {}, nullptr, &pool),
      serial);
}

// ---------------------------------------------------------------------------
// Decode: value-identical, and safe under concurrent readers.

TEST(ParallelDecode, MatchesSerialAtEveryThreadCount) {
  for (const Corpus* corpus : {&AlpSmall(), &RdSmall(), &TwoRowgroups()}) {
    SCOPED_TRACE(corpus->name);
    const Corpus& c = *corpus;
    std::vector<double> serial(c.values.size());
    {
      StatusOr<ColumnReader<double>> reader =
          ColumnReader<double>::Open(c.buffer.data(), c.buffer.size());
      ASSERT_TRUE(reader.ok());
      ASSERT_TRUE(reader->TryDecodeAll(serial.data()).ok());
    }
    for (const unsigned threads : {1u, 2u, 8u}) {
      ThreadPool pool(threads);
      StatusOr<ColumnReader<double>> reader = ColumnReader<double>::OpenParallel(
          c.buffer.data(), c.buffer.size(), &pool);
      ASSERT_TRUE(reader.ok()) << reader.status().ToString();
      std::vector<double> out(c.values.size(), -1.0);
      const Status decode = reader->TryDecodeAllParallel(out.data(), &pool);
      ASSERT_TRUE(decode.ok()) << decode.ToString();
      EXPECT_EQ(std::memcmp(out.data(), c.values.data(),
                            out.size() * sizeof(double)),
                0)
          << threads << " threads";
      EXPECT_EQ(std::memcmp(out.data(), serial.data(),
                            out.size() * sizeof(double)),
                0);
    }
  }
}

TEST(ParallelDecode, ConcurrentReadersSeeIdenticalValues) {
  // One shared reader, one shared pool, several reader threads decoding at
  // once - the TSan job turns any data race here into a failure.
  const Corpus& c = TwoRowgroups();
  StatusOr<ColumnReader<double>> reader =
      ColumnReader<double>::Open(c.buffer.data(), c.buffer.size());
  ASSERT_TRUE(reader.ok());
  ThreadPool pool(4);

  constexpr int kReaders = 4;
  std::vector<std::vector<double>> outs(
      kReaders, std::vector<double>(c.values.size(), -1.0));
  std::vector<Status> statuses(kReaders);
  std::vector<std::thread> threads;
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      // Half the readers fan out on the shared pool, half decode serially;
      // both classes run concurrently against the same reader.
      statuses[r] = (r % 2 == 0)
                        ? reader->TryDecodeAllParallel(outs[r].data(), &pool)
                        : reader->TryDecodeAll(outs[r].data());
    });
  }
  for (auto& t : threads) t.join();
  for (int r = 0; r < kReaders; ++r) {
    ASSERT_TRUE(statuses[r].ok()) << "reader " << r << ": "
                                  << statuses[r].ToString();
    EXPECT_EQ(std::memcmp(outs[r].data(), c.values.data(),
                          c.values.size() * sizeof(double)),
              0)
        << "reader " << r;
  }
}

// ---------------------------------------------------------------------------
// Status parity on corrupt input: the parallel paths must report exactly
// what the serial scan reports, regardless of which worker saw the damage.

/// Little-endian u64 at \p at (the v3 rowgroup offset table starts at 24).
uint64_t ReadU64(const std::vector<uint8_t>& buffer, size_t at) {
  uint64_t v = 0;
  std::memcpy(&v, buffer.data() + at, sizeof(v));
  return v;
}

TEST(ParallelStatusParity, CorruptRowgroupPayloadsReportIdentically) {
  const Corpus& c = TwoRowgroups();
  ThreadPool pool(4);
  uint32_t rowgroup_count = 0;
  std::memcpy(&rowgroup_count, c.buffer.data() + 16, sizeof(rowgroup_count));
  ASSERT_EQ(rowgroup_count, 2u);

  // Corrupt each rowgroup alone, then both: serial Open and parallel Open
  // must agree byte-for-byte on the Status text every time.
  for (const unsigned mask : {1u, 2u, 3u}) {
    SCOPED_TRACE("mask " + std::to_string(mask));
    std::vector<uint8_t> bad = c.buffer;
    for (uint32_t rg = 0; rg < rowgroup_count; ++rg) {
      if (mask & (1u << rg)) {
        bad[ReadU64(c.buffer, 24 + rg * 8) + 17] ^= 0x40;
      }
    }
    const StatusOr<ColumnReader<double>> serial =
        ColumnReader<double>::Open(bad.data(), bad.size());
    const StatusOr<ColumnReader<double>> parallel =
        ColumnReader<double>::OpenParallel(bad.data(), bad.size(), &pool);
    ASSERT_FALSE(serial.ok());
    ASSERT_FALSE(parallel.ok());
    EXPECT_EQ(parallel.status().ToString(), serial.status().ToString());
    EXPECT_EQ(parallel.status().code(), StatusCode::kChecksumMismatch);
  }
}

TEST(ParallelStatusParity, HeaderAndTruncationFailuresReportIdentically) {
  const Corpus& c = AlpSmall();
  ThreadPool pool(2);

  std::vector<std::vector<uint8_t>> cases;
  cases.push_back({});                                           // Empty.
  cases.push_back({1, 2, 3, 4, 5, 6, 7, 8});                     // Garbage.
  cases.emplace_back(c.buffer.begin(), c.buffer.end() - 9);      // Truncated.
  cases.push_back(c.buffer);
  cases.back()[0] ^= 0xFF;                                       // Bad magic.
  cases.push_back(c.buffer);
  cases.back()[testutil::kVersionByte] = 99;                     // Bad version.
  cases.push_back(c.buffer);
  cases.back()[8] ^= 0x10;                                       // value_count.

  for (size_t i = 0; i < cases.size(); ++i) {
    SCOPED_TRACE("case " + std::to_string(i));
    const auto& bad = cases[i];
    const StatusOr<ColumnReader<double>> serial =
        ColumnReader<double>::Open(bad.data(), bad.size());
    const StatusOr<ColumnReader<double>> parallel =
        ColumnReader<double>::OpenParallel(bad.data(), bad.size(), &pool);
    ASSERT_FALSE(serial.ok());
    ASSERT_FALSE(parallel.ok());
    EXPECT_EQ(parallel.status().ToString(), serial.status().ToString());
  }
}

TEST(ParallelStatusParity, V2DecodeFailuresReportIdentically) {
  // v2 has no checksums, so payload damage surfaces (if at all) during
  // decode. Whatever the serial walk reports - a Status, or success with
  // whatever values structural validation let through - the parallel decode
  // must reproduce exactly.
  const std::vector<uint8_t> v2 = StripToV2(TwoRowgroups().buffer);
  ThreadPool pool(4);
  std::mt19937_64 rng(909);
  int disagreements_possible = 0;
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<uint8_t> bad = v2;
    const size_t byte = 192 + rng() % (bad.size() - 192);  // Spare the header.
    bad[byte] ^= uint8_t{1} << (rng() % 8);

    const StatusOr<ColumnReader<double>> serial_reader =
        ColumnReader<double>::Open(bad.data(), bad.size());
    const StatusOr<ColumnReader<double>> parallel_reader =
        ColumnReader<double>::OpenParallel(bad.data(), bad.size(), &pool);
    ASSERT_EQ(parallel_reader.ok(), serial_reader.ok()) << "byte " << byte;
    if (!serial_reader.ok()) {
      EXPECT_EQ(parallel_reader.status().ToString(),
                serial_reader.status().ToString());
      continue;
    }
    ++disagreements_possible;
    std::vector<double> serial_out(serial_reader->value_count(), -1.0);
    std::vector<double> parallel_out(parallel_reader->value_count(), -2.0);
    const Status serial_status = serial_reader->TryDecodeAll(serial_out.data());
    const Status parallel_status =
        parallel_reader->TryDecodeAllParallel(parallel_out.data(), &pool);
    EXPECT_EQ(parallel_status.ToString(), serial_status.ToString())
        << "byte " << byte;
    if (serial_status.ok() && parallel_status.ok()) {
      EXPECT_EQ(std::memcmp(parallel_out.data(), serial_out.data(),
                            serial_out.size() * sizeof(double)),
                0)
          << "byte " << byte;
    }
  }
  // The loop must actually have exercised the decode-side comparison.
  EXPECT_GT(disagreements_possible, 0);
}

}  // namespace
}  // namespace alp
