// Unit tests for the utility substrate: bit helpers, the MSB-first bit
// stream, and the POD serialization buffers.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>

#include "util/bit_stream.h"
#include "util/bits.h"
#include "util/serialize.h"

namespace alp {
namespace {

TEST(Bits, BitCastsRoundTrip) {
  const double values[] = {0.0,
                           -0.0,
                           1.5,
                           -3.25,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max()};
  for (double v : values) {
    EXPECT_EQ(BitsOf(DoubleFromBits(BitsOf(v))), BitsOf(v));
  }
  const float fvalues[] = {0.0f, -0.0f, 1.5f, std::numeric_limits<float>::infinity()};
  for (float v : fvalues) {
    EXPECT_EQ(BitsOf(FloatFromBits(BitsOf(v))), BitsOf(v));
  }
}

TEST(Bits, NanPayloadSurvivesBitCast) {
  const uint64_t payload = 0x7FF800000000BEEFULL;
  EXPECT_EQ(BitsOf(DoubleFromBits(payload)), payload);
}

TEST(Bits, LeadingTrailingZerosHandleZero) {
  EXPECT_EQ(LeadingZeros(uint64_t{0}), 64);
  EXPECT_EQ(TrailingZeros(uint64_t{0}), 64);
  EXPECT_EQ(LeadingZeros(uint32_t{0}), 32);
  EXPECT_EQ(TrailingZeros(uint32_t{0}), 32);
}

TEST(Bits, LeadingTrailingZerosBasic) {
  EXPECT_EQ(LeadingZeros(uint64_t{1}), 63);
  EXPECT_EQ(TrailingZeros(uint64_t{1}), 0);
  EXPECT_EQ(LeadingZeros(uint64_t{1} << 63), 0);
  EXPECT_EQ(TrailingZeros(uint64_t{1} << 63), 63);
  EXPECT_EQ(LeadingZeros(uint32_t{0x00010000}), 15);
}

TEST(Bits, BitWidth) {
  EXPECT_EQ(BitWidth(uint64_t{0}), 0u);
  EXPECT_EQ(BitWidth(uint64_t{1}), 1u);
  EXPECT_EQ(BitWidth(uint64_t{255}), 8u);
  EXPECT_EQ(BitWidth(uint64_t{256}), 9u);
  EXPECT_EQ(BitWidth(~uint64_t{0}), 64u);
}

TEST(Bits, LowMask) {
  EXPECT_EQ(LowMask64(0), 0u);
  EXPECT_EQ(LowMask64(1), 1u);
  EXPECT_EQ(LowMask64(64), ~uint64_t{0});
  EXPECT_EQ(LowMask32(32), ~uint32_t{0});
  EXPECT_EQ(LowMask64(52), (uint64_t{1} << 52) - 1);
}

TEST(Bits, BiasedExponent) {
  EXPECT_EQ(BiasedExponent(1.0), 1023u);
  EXPECT_EQ(BiasedExponent(2.0), 1024u);
  EXPECT_EQ(BiasedExponent(0.5), 1022u);
  EXPECT_EQ(BiasedExponent(0.0), 0u);
  EXPECT_EQ(BiasedExponent(1.0f), 127u);
}

TEST(BitStream, SingleBits) {
  BitWriter writer;
  const bool pattern[] = {true, false, true, true, false, false, true, false, true};
  for (bool b : pattern) writer.WriteBit(b);
  const auto bytes = writer.Finish();
  BitReader reader(bytes.data(), bytes.size());
  for (bool b : pattern) EXPECT_EQ(reader.ReadBit(), b);
}

TEST(BitStream, FullWidthWrites) {
  BitWriter writer;
  writer.WriteBits(0xDEADBEEFCAFEBABEULL, 64);
  writer.WriteBits(0x12345678u, 32);
  writer.WriteBits(0, 64);
  const auto bytes = writer.Finish();
  BitReader reader(bytes.data(), bytes.size());
  EXPECT_EQ(reader.ReadBits(64), 0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(reader.ReadBits(32), 0x12345678u);
  EXPECT_EQ(reader.ReadBits(64), 0u);
}

TEST(BitStream, ZeroWidthWriteIsNoop) {
  BitWriter writer;
  writer.WriteBits(0xFF, 0);
  EXPECT_EQ(writer.bit_count(), 0u);
  writer.WriteBits(0b101, 3);
  EXPECT_EQ(writer.bit_count(), 3u);
}

TEST(BitStream, ValueIsMaskedToWidth) {
  BitWriter writer;
  writer.WriteBits(0xFFFFFFFFFFFFFFFFULL, 5);
  writer.WriteBits(0, 3);
  const auto bytes = writer.Finish();
  BitReader reader(bytes.data(), bytes.size());
  EXPECT_EQ(reader.ReadBits(5), 0x1Fu);
  EXPECT_EQ(reader.ReadBits(3), 0u);
}

TEST(BitStream, UnalignedMixRoundTrips) {
  std::mt19937_64 rng(7);
  std::vector<std::pair<uint64_t, unsigned>> writes;
  BitWriter writer;
  for (int i = 0; i < 10000; ++i) {
    const unsigned width = 1 + static_cast<unsigned>(rng() % 64);
    const uint64_t value = rng() & LowMask64(width);
    writes.emplace_back(value, width);
    writer.WriteBits(value, width);
  }
  const auto bytes = writer.Finish();
  BitReader reader(bytes.data(), bytes.size());
  for (const auto& [value, width] : writes) {
    ASSERT_EQ(reader.ReadBits(width), value);
  }
}

TEST(BitStream, AlignToByte) {
  BitWriter writer;
  writer.WriteBits(0b1, 1);
  writer.AlignToByte();
  EXPECT_EQ(writer.bit_count(), 8u);
  writer.WriteBits(0xAB, 8);
  const auto bytes = writer.Finish();
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0x80);
  EXPECT_EQ(bytes[1], 0xAB);
}

TEST(BitStream, ReaderSkipAndPosition) {
  BitWriter writer;
  writer.WriteBits(0xAA, 8);
  writer.WriteBits(0x1234, 16);
  const auto bytes = writer.Finish();
  BitReader reader(bytes.data(), bytes.size());
  reader.SkipBits(8);
  EXPECT_EQ(reader.position(), 8u);
  EXPECT_EQ(reader.ReadBits(16), 0x1234u);
  EXPECT_TRUE(reader.HasBits(0));
  EXPECT_FALSE(reader.HasBits(1));
}

TEST(ByteBuffer, AppendAndRead) {
  ByteBuffer buffer;
  buffer.Append<uint32_t>(0xCAFE);
  buffer.Append<uint64_t>(42);
  const uint16_t array[] = {1, 2, 3};
  buffer.AppendArray(array, 3);
  const auto bytes = buffer.Take();

  ByteReader reader(bytes.data(), bytes.size());
  EXPECT_EQ(reader.Read<uint32_t>(), 0xCAFEu);
  EXPECT_EQ(reader.Read<uint64_t>(), 42u);
  uint16_t read_back[3];
  reader.ReadArray(read_back, 3);
  EXPECT_EQ(read_back[0], 1);
  EXPECT_EQ(read_back[2], 3);
}

TEST(ByteBuffer, AlignTo) {
  ByteBuffer buffer;
  buffer.Append<uint8_t>(1);
  buffer.AlignTo(8);
  EXPECT_EQ(buffer.size(), 8u);
  buffer.AlignTo(8);
  EXPECT_EQ(buffer.size(), 8u);
}

TEST(ByteBuffer, ReserveAndPatch) {
  ByteBuffer buffer;
  const size_t slot = buffer.ReserveSlot<uint64_t>(2);
  buffer.Append<uint8_t>(0xEE);
  const uint64_t patched[] = {111, 222};
  buffer.PatchArrayAt(slot, patched, 2);
  const auto bytes = buffer.Take();
  ByteReader reader(bytes.data(), bytes.size());
  EXPECT_EQ(reader.Read<uint64_t>(), 111u);
  EXPECT_EQ(reader.Read<uint64_t>(), 222u);
  EXPECT_EQ(reader.Read<uint8_t>(), 0xEE);
}

TEST(ByteReader, SeekAndAlign) {
  ByteBuffer buffer;
  for (uint8_t i = 0; i < 16; ++i) buffer.Append(i);
  const auto bytes = buffer.Take();
  ByteReader reader(bytes.data(), bytes.size());
  reader.Skip(3);
  reader.AlignTo(8);
  EXPECT_EQ(reader.position(), 8u);
  EXPECT_EQ(reader.Read<uint8_t>(), 8);
  reader.SeekTo(15);
  EXPECT_EQ(reader.Read<uint8_t>(), 15);
}

}  // namespace
}  // namespace alp
