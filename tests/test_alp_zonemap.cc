// Tests for the v2 format's per-vector zone maps, ValidateColumn, and the
// failure-injection behaviour on corrupted buffers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "alp/column.h"
#include "util/bits.h"

namespace alp {
namespace {

std::vector<double> Decimals(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<double> values(n);
  for (auto& v : values) {
    v = static_cast<double>(static_cast<int64_t>(rng() % 1000000)) / 100.0;
  }
  return values;
}

TEST(ZoneMap, MinMaxMatchData) {
  const auto data = Decimals(kVectorSize * 5 + 100, 1);
  const auto buffer = CompressColumn(data.data(), data.size());
  ColumnReader<double> reader(buffer.data(), buffer.size());
  for (size_t v = 0; v < reader.vector_count(); ++v) {
    const VectorStats& stats = reader.Stats(v);
    double min = std::numeric_limits<double>::infinity();
    double max = -min;
    for (unsigned i = 0; i < reader.VectorLength(v); ++i) {
      min = std::min(min, data[v * kVectorSize + i]);
      max = std::max(max, data[v * kVectorSize + i]);
    }
    EXPECT_EQ(stats.min, min) << v;
    EXPECT_EQ(stats.max, max) << v;
  }
}

TEST(ZoneMap, MayContainSemantics) {
  VectorStats stats;
  stats.min = 10.0;
  stats.max = 20.0;
  EXPECT_TRUE(stats.MayContain(15.0, 16.0));
  EXPECT_TRUE(stats.MayContain(5.0, 10.0));    // Touches min.
  EXPECT_TRUE(stats.MayContain(20.0, 30.0));   // Touches max.
  EXPECT_TRUE(stats.MayContain(0.0, 100.0));   // Covers.
  EXPECT_FALSE(stats.MayContain(21.0, 30.0));
  EXPECT_FALSE(stats.MayContain(0.0, 9.0));
}

TEST(ZoneMap, NansAreExcluded) {
  std::vector<double> data(kVectorSize, std::numeric_limits<double>::quiet_NaN());
  data[10] = 5.0;
  data[20] = 7.0;
  const auto buffer = CompressColumn(data.data(), data.size());
  ColumnReader<double> reader(buffer.data(), buffer.size());
  EXPECT_EQ(reader.Stats(0).min, 5.0);
  EXPECT_EQ(reader.Stats(0).max, 7.0);
}

TEST(ZoneMap, AllNanVectorMatchesNothing) {
  std::vector<double> data(kVectorSize, std::numeric_limits<double>::quiet_NaN());
  const auto buffer = CompressColumn(data.data(), data.size());
  ColumnReader<double> reader(buffer.data(), buffer.size());
  EXPECT_FALSE(reader.VectorMayContain(0, -1e308, 1e308));
}

TEST(ZoneMap, SkippingIsSound) {
  // Sorted data: most vectors are disjoint from a narrow range; verify that
  // the vectors the zone map admits contain ALL matching values.
  std::vector<double> data(kVectorSize * 20);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<double>(i) * 0.25;
  const auto buffer = CompressColumn(data.data(), data.size());
  ColumnReader<double> reader(buffer.data(), buffer.size());

  const double lo = 1000.0;
  const double hi = 1100.0;
  size_t matches_in_admitted = 0;
  size_t admitted = 0;
  std::vector<double> out(kVectorSize);
  for (size_t v = 0; v < reader.vector_count(); ++v) {
    if (!reader.VectorMayContain(v, lo, hi)) continue;
    ++admitted;
    reader.DecodeVector(v, out.data());
    for (unsigned i = 0; i < reader.VectorLength(v); ++i) {
      matches_in_admitted += out[i] >= lo && out[i] <= hi;
    }
  }
  size_t true_matches = 0;
  for (double v : data) true_matches += v >= lo && v <= hi;
  EXPECT_EQ(matches_in_admitted, true_matches);
  EXPECT_LT(admitted, reader.vector_count() / 4);  // Real skipping happened.
}

TEST(ZoneMap, RdRowgroupsHaveStatsToo) {
  std::mt19937_64 rng(3);
  std::vector<double> data(kVectorSize * 3);
  for (auto& v : data) v = 1.0 + static_cast<double>(rng() >> 11) * 0x1.0p-53;
  const auto buffer = CompressColumn(data.data(), data.size());
  ColumnReader<double> reader(buffer.data(), buffer.size());
  ASSERT_EQ(reader.VectorScheme(0), Scheme::kAlpRd);
  EXPECT_GE(reader.Stats(0).min, 1.0);
  EXPECT_LE(reader.Stats(0).max, 2.0);
}

// ---------------------------------------------------------------------------
// ValidateColumn.
// ---------------------------------------------------------------------------

TEST(Validate, AcceptsGoodBuffers) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{1024}, size_t{300000}}) {
    const auto data = Decimals(n, n + 1);
    const auto buffer = CompressColumn(data.data(), n);
    std::string reason;
    EXPECT_TRUE(ValidateColumn<double>(buffer.data(), buffer.size(), &reason))
        << n << ": " << reason;
  }
}

TEST(Validate, RejectsNullAndTiny) {
  EXPECT_FALSE(ValidateColumn<double>(nullptr, 0));
  const uint8_t junk[4] = {1, 2, 3, 4};
  EXPECT_FALSE(ValidateColumn<double>(junk, sizeof(junk)));
}

TEST(Validate, RejectsBadMagic) {
  const auto data = Decimals(1024, 1);
  auto buffer = CompressColumn(data.data(), data.size());
  buffer[0] ^= 0xFF;
  std::string reason;
  EXPECT_FALSE(ValidateColumn<double>(buffer.data(), buffer.size(), &reason));
  EXPECT_EQ(reason, "bad magic");
}

TEST(Validate, RejectsWrongVersion) {
  const auto data = Decimals(1024, 2);
  auto buffer = CompressColumn(data.data(), data.size());
  buffer[4] = 99;  // Version byte.
  EXPECT_FALSE(ValidateColumn<double>(buffer.data(), buffer.size()));
}

TEST(Validate, RejectsTypeMismatch) {
  const auto data = Decimals(1024, 3);
  const auto buffer = CompressColumn(data.data(), data.size());
  EXPECT_TRUE(ValidateColumn<double>(buffer.data(), buffer.size()));
  EXPECT_FALSE(ValidateColumn<float>(buffer.data(), buffer.size()));
}

TEST(Validate, RejectsTruncation) {
  const auto data = Decimals(kRowgroupSize + 5, 4);
  const auto buffer = CompressColumn(data.data(), data.size());
  for (size_t cut : {buffer.size() / 2, buffer.size() - 9, size_t{30}}) {
    EXPECT_FALSE(ValidateColumn<double>(buffer.data(), cut)) << cut;
  }
}

TEST(Validate, RejectsCorruptedRowgroupOffset) {
  const auto data = Decimals(4096, 5);
  auto buffer = CompressColumn(data.data(), data.size());
  // The first rowgroup offset lives right after the 24-byte header.
  uint64_t bogus = buffer.size() + 1024;
  std::memcpy(buffer.data() + 24, &bogus, sizeof(bogus));
  EXPECT_FALSE(ValidateColumn<double>(buffer.data(), buffer.size()));
}

TEST(Validate, RejectsForeignBytes) {
  std::mt19937_64 rng(6);
  std::vector<uint8_t> junk(4096);
  for (auto& b : junk) b = static_cast<uint8_t>(rng());
  EXPECT_FALSE(ValidateColumn<double>(junk.data(), junk.size()));
}

}  // namespace
}  // namespace alp
