// Tests for the LWC+ALP cascade (Table 4): strategy selection, dictionary
// and RLE nesting, and bit-exact round-trips.

#include <gtest/gtest.h>

#include <limits>
#include <random>
#include <vector>

#include "alp/cascade.h"
#include "util/bits.h"

namespace alp {
namespace {

void ExpectBitExact(const std::vector<double>& a, const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(BitsOf(a[i]), BitsOf(b[i])) << "index " << i;
  }
}

std::vector<double> RoundTrip(const std::vector<double>& data,
                              CascadeStrategy* used = nullptr) {
  const auto buffer = CascadeCompress(data.data(), data.size(), {}, used);
  EXPECT_EQ(CascadeValueCount(buffer), data.size());
  std::vector<double> out(data.size());
  CascadeDecompress(buffer, out.data());
  return out;
}

TEST(Cascade, PlainStrategyOnUniqueDecimals) {
  std::mt19937_64 rng(1);
  std::vector<double> data(50000);
  for (auto& v : data) {
    v = static_cast<double>(static_cast<int64_t>(rng() % 100000000)) / 1000.0;
  }
  CascadeStrategy used;
  const auto out = RoundTrip(data, &used);
  EXPECT_EQ(used, CascadeStrategy::kPlain);
  ExpectBitExact(data, out);
}

TEST(Cascade, RleStrategyOnRunHeavyData) {
  // Gov/26-like: long runs of zero with occasional values.
  std::mt19937_64 rng(2);
  std::vector<double> data;
  while (data.size() < 200000) {
    const size_t zeros = 20 + rng() % 100;
    data.insert(data.end(), zeros, 0.0);
    data.push_back(static_cast<double>(static_cast<int64_t>(rng() % 100000)) / 100.0);
  }
  CascadeStrategy used;
  const auto out = RoundTrip(data, &used);
  EXPECT_EQ(used, CascadeStrategy::kRle);
  ExpectBitExact(data, out);

  // RLE over ALP must land far below the plain 64 bits per value.
  const auto buffer = CascadeCompress(data.data(), data.size());
  EXPECT_LT(static_cast<double>(buffer.size()) * 8 / data.size(), 8.0);
}

TEST(Cascade, DictionaryStrategyOnDuplicateHeavyData) {
  // CMS/1-like: many repeats of a modest set of distinct prices, shuffled
  // (no long runs, so RLE is not preferred).
  std::mt19937_64 rng(3);
  std::vector<double> pool(500);
  for (auto& v : pool) {
    v = static_cast<double>(static_cast<int64_t>(rng() % 100000000)) / 10000.0;
  }
  std::vector<double> data(200000);
  for (auto& v : data) v = pool[rng() % pool.size()];

  CascadeStrategy used;
  const auto out = RoundTrip(data, &used);
  EXPECT_EQ(used, CascadeStrategy::kDictionary);
  ExpectBitExact(data, out);

  const auto buffer = CascadeCompress(data.data(), data.size());
  // 500 distinct values -> 9-bit codes + tiny dictionary.
  EXPECT_LT(static_cast<double>(buffer.size()) * 8 / data.size(), 12.0);
}

TEST(Cascade, DictionaryFallsBackWhenTooManyDistinct) {
  std::mt19937_64 rng(4);
  // Every value duplicated once (50% duplicates triggers the dict attempt)
  // but the distinct count exceeds the configured cap.
  std::vector<double> data;
  for (int i = 0; i < 50000; ++i) {
    const double v = static_cast<double>(i) / 100.0;
    data.push_back(v);
    data.push_back(v);
  }
  // Shuffle lightly so RLE is not chosen.
  for (size_t i = data.size() - 1; i > 0; --i) {
    std::swap(data[i], data[rng() % (i + 1)]);
  }
  CascadeConfig config;
  config.max_dictionary_size = 1000;
  CascadeStrategy used;
  const auto buffer = CascadeCompress(data.data(), data.size(), config, &used);
  EXPECT_EQ(used, CascadeStrategy::kPlain);
  std::vector<double> out(data.size());
  CascadeDecompress(buffer, out.data());
  ExpectBitExact(data, out);
}

TEST(Cascade, EmptyInput) {
  CascadeStrategy used;
  const auto buffer = CascadeCompress(nullptr, 0, {}, &used);
  EXPECT_EQ(CascadeValueCount(buffer), 0u);
}

TEST(Cascade, TinyInput) {
  const std::vector<double> data = {1.5, 1.5, 2.5};
  const auto out = RoundTrip(data);
  ExpectBitExact(data, out);
}

TEST(Cascade, AllSameValue) {
  const std::vector<double> data(100000, 3.14);
  CascadeStrategy used;
  const auto out = RoundTrip(data, &used);
  EXPECT_EQ(used, CascadeStrategy::kRle);
  ExpectBitExact(data, out);
  const auto buffer = CascadeCompress(data.data(), data.size());
  EXPECT_LT(static_cast<double>(buffer.size()) * 8 / data.size(), 0.5);
}

TEST(Cascade, SpecialValuesSurviveEveryStrategy) {
  // Force each strategy and include NaN / -0.0 / inf.
  std::vector<double> specials = {0.0, -0.0,
                                  std::numeric_limits<double>::quiet_NaN(),
                                  std::numeric_limits<double>::infinity()};
  // RLE path.
  std::vector<double> runs;
  for (double s : specials) runs.insert(runs.end(), 1000, s);
  CascadeStrategy used;
  auto out = RoundTrip(runs, &used);
  EXPECT_EQ(used, CascadeStrategy::kRle);
  ExpectBitExact(runs, out);

  // Dictionary path: shuffled repeats.
  std::mt19937_64 rng(5);
  std::vector<double> dict_data(20000);
  for (auto& v : dict_data) v = specials[rng() % specials.size()];
  // Interleave a few uniques so runs stay short.
  for (size_t i = 0; i < dict_data.size(); i += 7) {
    dict_data[i] = static_cast<double>(i) / 100.0;
  }
  out = RoundTrip(dict_data, &used);
  ExpectBitExact(dict_data, out);
}

}  // namespace
}  // namespace alp
