// Request-scoped observability suite: the flight recorder's bounded ring
// and aggregation tables, trace-ID generation and ambient attribution, and
// the end-to-end acceptance path — a request that trips a slow threshold,
// an injected error, or a stall-only fault produces a dump naming its trace
// ID, queue wait, per-stage spans, cache traffic, chunk fetches and kernel
// tier, both in Response::flight_json and in the slow-query log file.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "alp/alp.h"
#include "alp/kernel_dispatch.h"
#include "obs/flight_recorder.h"
#include "server/server.h"
#include "util/fault_injection.h"
#include "util/status.h"

namespace alp {
namespace {

using obs::FlightRecorder;
using server::QueryClass;
using server::Request;
using server::Response;
using server::Server;
using server::ServerConfig;

/// RAII: every test that arms faults must leave the global registry clean.
struct FaultGuard {
  FaultGuard() { fault::DisarmAll(); }
  ~FaultGuard() {
    fault::DisarmAll();
    fault::SetEnabled(false);
  }
};

/// Clean decimal data so every vector compresses via ALP.
std::vector<double> ServingData(size_t n) {
  std::vector<double> data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<double>((i * 37) % 100000) / 100.0 - 250.0;
  }
  return data;
}

/// Completion accounting (slow_queries, flight_dumps) lands *after* a
/// request's future resolves — the worker relocks to update stats — so
/// post-completion counter assertions poll briefly instead of racing it.
template <typename Predicate>
void AwaitStats(const Predicate& predicate) {
  for (int i = 0; i < 5000; ++i) {
    if (predicate()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "stats predicate not satisfied within 5s";
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// ---------------------------------------------------------------------------
// FlightRecorder unit behaviour.

TEST(FlightRecorder, AggregatesCountersAndSpans) {
  FlightRecorder recorder;
  recorder.Reset(0x1234, "scan", "acme");
  recorder.Count("io.cache.hit", 3);
  recorder.Count("io.cache.hit", 2);
  recorder.Count("io.cache.miss");
  recorder.Span("server.request", 1000, 5000, 1024);
  recorder.Span("server.request", 5000, 6000, 1024);
  EXPECT_EQ(recorder.trace_id(), 0x1234u);
  EXPECT_EQ(recorder.CounterValue("io.cache.hit"), 5u);
  EXPECT_EQ(recorder.CounterValue("io.cache.miss"), 1u);
  EXPECT_EQ(recorder.CounterValue("never.recorded"), 0u);
  EXPECT_EQ(recorder.SpanCalls("server.request"), 2u);
  EXPECT_EQ(recorder.FaultFires(), 0u);
}

TEST(FlightRecorder, ResetClearsEverything) {
  FlightRecorder recorder;
  recorder.Reset(1, "scan", "a");
  recorder.Count("k", 7);
  recorder.RecordFault("site", /*failed=*/true, /*stall_us=*/10);
  recorder.Reset(2, "aggregate", "b");
  EXPECT_EQ(recorder.trace_id(), 2u);
  EXPECT_EQ(recorder.CounterValue("k"), 0u);
  EXPECT_EQ(recorder.FaultFires(), 0u);
  EXPECT_EQ(recorder.EventCount(), 0u);
  EXPECT_EQ(recorder.DroppedEvents(), 0u);
}

TEST(FlightRecorder, RingDropsOldestAndCountsDrops) {
  FlightRecorder recorder;
  recorder.Reset(9, "scan", "t");
  const size_t pushed = FlightRecorder::kEventCapacity + 10;
  for (size_t i = 0; i < pushed; ++i) recorder.Count("io.cache.hit");
  EXPECT_EQ(recorder.EventCount(), FlightRecorder::kEventCapacity);
  EXPECT_EQ(recorder.DroppedEvents(), 10u);
  // Aggregation is lossless even though ring events dropped.
  EXPECT_EQ(recorder.CounterValue("io.cache.hit"), pushed);
  const std::string json = recorder.ToJson();
  EXPECT_TRUE(Contains(json, "\"events_dropped\":10")) << json;
}

TEST(FlightRecorder, ToJsonCarriesIdentityOutcomeAndFaults) {
  FlightRecorder recorder;
  recorder.Reset(0xdeadbeef, "point_lookup", "tenant-7");
  recorder.Annotate("admit.queue_depth", 3);
  recorder.RecordFault("io.chunk_read", /*failed=*/false, /*stall_us=*/250);
  recorder.SetOutcome(Status::Ok(), /*queue_ns=*/4000, /*exec_ns=*/9000);
  recorder.Label("dump_reason", "fault");
  const std::string json = recorder.ToJson();
  EXPECT_TRUE(Contains(json, "\"trace_id\":\"00000000deadbeef\"")) << json;
  EXPECT_TRUE(Contains(json, "\"class\":\"point_lookup\"")) << json;
  EXPECT_TRUE(Contains(json, "\"tenant\":\"tenant-7\"")) << json;
  EXPECT_TRUE(Contains(json, "\"status\":\"OK\"")) << json;
  EXPECT_TRUE(Contains(json, "\"queue_us\":4")) << json;
  EXPECT_TRUE(Contains(json, "\"exec_us\":9")) << json;
  EXPECT_TRUE(Contains(json, "\"site\":\"io.chunk_read\"")) << json;
  EXPECT_TRUE(Contains(json, "\"stall_us\":250")) << json;
  EXPECT_TRUE(Contains(json, "\"dump_reason\":\"fault\"")) << json;
  // The dump is one JSON line: the slow-query log is JSON-lines format.
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

// ---------------------------------------------------------------------------
// Trace IDs and ambient attribution.

TEST(TraceId, NewTraceIdsAreNonZeroAndDistinct) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 4096; ++i) {
    const uint64_t id = obs::NewTraceId();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(seen.insert(id).second) << "duplicate trace id";
  }
}

TEST(TraceId, HexRenderingIsSixteenLowercaseDigits) {
  EXPECT_EQ(obs::TraceIdHex(0), "0000000000000000");
  EXPECT_EQ(obs::TraceIdHex(0xABCDEF), "0000000000abcdef");
  EXPECT_EQ(obs::TraceIdHex(~0ull), "ffffffffffffffff");
  const std::string hex = obs::TraceIdHex(obs::NewTraceId());
  EXPECT_EQ(hex.size(), 16u);
  for (char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << hex;
  }
}

TEST(Attribution, ScopedInstallAndNestedRestore) {
  EXPECT_EQ(obs::CurrentFlightRecorder(), nullptr);
  EXPECT_EQ(obs::CurrentTraceId(), 0u);
  FlightRecorder outer_rec;
  FlightRecorder inner_rec;
  {
    obs::ScopedRequestAttribution outer(11, &outer_rec);
    EXPECT_EQ(obs::CurrentFlightRecorder(), &outer_rec);
    EXPECT_EQ(obs::CurrentTraceId(), 11u);
    {
      obs::ScopedRequestAttribution inner(22, &inner_rec);
      EXPECT_EQ(obs::CurrentFlightRecorder(), &inner_rec);
      EXPECT_EQ(obs::CurrentTraceId(), 22u);
    }
    EXPECT_EQ(obs::CurrentFlightRecorder(), &outer_rec);
    EXPECT_EQ(obs::CurrentTraceId(), 11u);
  }
  EXPECT_EQ(obs::CurrentFlightRecorder(), nullptr);
  EXPECT_EQ(obs::CurrentTraceId(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end through the server.

TEST(RequestObs, ServerAssignsTraceIdAndEchoesCallerProvidedOnes) {
  ServerConfig config;
  config.workers = 2;
  Server server(config);
  const auto data = ServingData(2 * kVectorSize);
  ASSERT_TRUE(server.AddColumn("col", data.data(), data.size()).ok());

  Request assigned;
  assigned.column = "col";
  assigned.query_class = QueryClass::kAggregate;
  const Response r1 = server.Execute(assigned);
  ASSERT_TRUE(r1.status.ok()) << r1.status.ToString();
  EXPECT_NE(r1.trace_id, 0u);

  Request provided = assigned;
  provided.trace_id = 0xfeedface;
  const Response r2 = server.Execute(provided);
  ASSERT_TRUE(r2.status.ok());
  EXPECT_EQ(r2.trace_id, 0xfeedfaceu);
}

TEST(RequestObs, FastSuccessDropsRecorderForFree) {
  FaultGuard guard;
  ServerConfig config;
  config.workers = 1;
  config.flight_recorder = true;  // Armed, but no dump condition will trip.
  Server server(config);
  const auto data = ServingData(kVectorSize);
  ASSERT_TRUE(server.AddColumn("col", data.data(), data.size()).ok());

  Request request;
  request.column = "col";
  request.query_class = QueryClass::kPointLookup;
  const Response r = server.Execute(request);
  ASSERT_TRUE(r.status.ok());
  EXPECT_TRUE(r.flight_json.empty());
  AwaitStats([&] { return server.stats().completed == 1; });
  EXPECT_EQ(server.stats().flight_dumps, 0u);
}

TEST(RequestObs, SlowRequestDumpsQueueExecSpansCacheAndKernelTier) {
  FaultGuard guard;
  ServerConfig config;
  config.workers = 1;
  config.slow_query_us = 1;  // Everything is "slow": deterministic dumps.
  config.cache_bytes = 4 << 20;
  Server server(config);
  const auto data = ServingData(3 * kVectorSize + 77);
  ASSERT_TRUE(server.AddColumn("col", data.data(), data.size()).ok());

  Request request;
  request.column = "col";
  request.query_class = QueryClass::kScan;
  request.tenant = "acme";
  const Response cold = server.Execute(request);
  ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();
  ASSERT_FALSE(cold.flight_json.empty());
  const std::string& dump = cold.flight_json;

  // Identity, timing, reason and kernel tier — the acceptance-criteria
  // fields a tail-latency investigation starts from.
  EXPECT_TRUE(Contains(dump, "\"trace_id\":\"" + obs::TraceIdHex(cold.trace_id) +
                                 "\""))
      << dump;
  EXPECT_TRUE(Contains(dump, "\"class\":\"scan\"")) << dump;
  EXPECT_TRUE(Contains(dump, "\"tenant\":\"acme\"")) << dump;
  EXPECT_TRUE(Contains(dump, "\"queue_us\":")) << dump;
  EXPECT_TRUE(Contains(dump, "\"exec_us\":")) << dump;
  EXPECT_TRUE(Contains(dump, "\"dump_reason\":\"slow\"")) << dump;
  EXPECT_TRUE(Contains(dump, std::string("\"kernel_tier\":\"") +
                                 kernels::ActiveTierName() + "\""))
      << dump;
  // Admission annotations are recorded unconditionally once armed.
  EXPECT_TRUE(Contains(dump, "admit.queue_depth")) << dump;
#if ALP_OBS
  // Per-stage spans and per-vector IO counters ride the ALP_OBS sites.
  EXPECT_TRUE(Contains(dump, "\"server.request\"")) << dump;
  EXPECT_TRUE(Contains(dump, "\"io.cache.miss\"")) << dump;
  EXPECT_TRUE(Contains(dump, "\"io.chunk.reads\"")) << dump;
  EXPECT_TRUE(Contains(dump, "\"io.chunk.bytes\"")) << dump;
  EXPECT_TRUE(Contains(dump, "\"decode.exceptions\"")) << dump;

  // A second identical request decodes from the now-warm cache: its dump
  // attributes hits instead of chunk fetches.
  const Response warm = server.Execute(request);
  ASSERT_TRUE(warm.status.ok());
  ASSERT_FALSE(warm.flight_json.empty());
  EXPECT_TRUE(Contains(warm.flight_json, "\"io.cache.hit\""))
      << warm.flight_json;
#endif
  AwaitStats([&] { return server.stats().slow_queries >= 1; });
  AwaitStats([&] { return server.stats().flight_dumps >= 1; });
}

TEST(RequestObs, InjectedErrorDumpsWithFaultSiteAttribution) {
  FaultGuard guard;
  ServerConfig config;
  config.workers = 1;
  config.flight_recorder = true;
  Server server(config);
  const auto data = ServingData(kVectorSize);
  ASSERT_TRUE(server.AddColumn("col", data.data(), data.size()).ok());

  fault::FaultSpec spec;
  spec.code = StatusCode::kIo;
  spec.message = "injected request-io error";
  fault::Arm("server.request_io", spec);

  Request request;
  request.column = "col";
  request.query_class = QueryClass::kScan;
  const Response r = server.Execute(request);
  EXPECT_EQ(r.status.code(), StatusCode::kIo);
  ASSERT_FALSE(r.flight_json.empty());
  EXPECT_TRUE(Contains(r.flight_json, "\"dump_reason\":\"error\""))
      << r.flight_json;
  EXPECT_TRUE(Contains(r.flight_json, "\"status\":\"IO\"")) << r.flight_json;
  EXPECT_TRUE(Contains(r.flight_json, "\"site\":\"server.request_io\""))
      << r.flight_json;
  EXPECT_TRUE(Contains(r.flight_json, "\"failed\":true")) << r.flight_json;
}

TEST(RequestObs, StallOnlyFaultOnSuccessfulRequestStillDumps) {
  // The key acceptance case: a stall-only fault models a slow storage read.
  // The request SUCCEEDS, yet the dump must name the stalled site — that is
  // the whole point of attributing stalls to the flight recorder.
  FaultGuard guard;
  ServerConfig config;
  config.workers = 1;
  config.flight_recorder = true;
  Server server(config);
  const auto data = ServingData(kVectorSize);
  ASSERT_TRUE(server.AddColumn("col", data.data(), data.size()).ok());

  fault::FaultSpec stall;
  stall.stall_only = true;
  stall.stall_us = 500;
  fault::Arm("io.chunk_read", stall);

  Request request;
  request.column = "col";
  request.query_class = QueryClass::kScan;
  const Response r = server.Execute(request);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  ASSERT_FALSE(r.flight_json.empty());
  EXPECT_TRUE(Contains(r.flight_json, "\"dump_reason\":\"fault\""))
      << r.flight_json;
  EXPECT_TRUE(Contains(r.flight_json, "\"site\":\"io.chunk_read\""))
      << r.flight_json;
  EXPECT_TRUE(Contains(r.flight_json, "\"failed\":false")) << r.flight_json;
  EXPECT_TRUE(Contains(r.flight_json, "\"stall_us\":500")) << r.flight_json;
}

TEST(RequestObs, SlowLogCollectsOneJsonLinePerDump) {
  FaultGuard guard;
  const std::string log_path = TempPath("request_obs_slow.log");
  std::remove(log_path.c_str());

  uint64_t dumps = 0;
  {
    ServerConfig config;
    config.workers = 2;
    config.slow_query_us = 1;
    config.slow_log_path = log_path;
    Server server(config);
    const auto data = ServingData(2 * kVectorSize);
    ASSERT_TRUE(server.AddColumn("col", data.data(), data.size()).ok());

    for (int i = 0; i < 6; ++i) {
      Request request;
      request.column = "col";
      request.query_class =
          i % 2 == 0 ? QueryClass::kScan : QueryClass::kAggregate;
      request.tenant = i % 3 == 0 ? "alpha" : "beta";
      const Response r = server.Execute(request);
      ASSERT_TRUE(r.status.ok());
      EXPECT_FALSE(r.flight_json.empty());
    }
    AwaitStats([&] { return server.stats().flight_dumps == 6; });
    dumps = server.stats().flight_dumps;
    server.Shutdown();  // Flushes and closes the log.
  }
  EXPECT_EQ(dumps, 6u);

  std::ifstream log(log_path);
  ASSERT_TRUE(log.is_open()) << log_path;
  std::string line;
  size_t lines = 0;
  while (std::getline(log, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_TRUE(Contains(line, "\"trace_id\":\"")) << line;
    EXPECT_TRUE(Contains(line, "\"dump_reason\":\"slow\"")) << line;
    ++lines;
  }
  EXPECT_EQ(lines, dumps);
  std::remove(log_path.c_str());
}

}  // namespace
}  // namespace alp
