// Tests for ALP_rd (Section 3.4 / Algorithm 3): cut-position search, skewed
// dictionary construction, exception handling and bit-exact glue decoding
// on "real doubles".

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "alp/rd.h"
#include "util/bits.h"

namespace alp {
namespace {

/// Full-mantissa-entropy doubles in a narrow range (POI-like).
std::vector<double> RealDoubles(size_t n, uint64_t seed, double lo = 0.0,
                                double hi = 1.2) {
  std::mt19937_64 rng(seed);
  std::vector<double> values(n);
  for (auto& v : values) {
    v = lo + (hi - lo) * (static_cast<double>(rng() >> 11) * 0x1.0p-53);
  }
  return values;
}

template <typename T>
std::vector<T> RoundTripRd(const std::vector<T>& in, const RdParams<T>& params) {
  RdEncodedVector<T> enc;
  RdEncodeVector(in.data(), static_cast<unsigned>(in.size()), params, &enc);
  std::vector<T> out(kVectorSize);
  RdDecodeVector(enc, params, out.data());
  out.resize(in.size());
  return out;
}

TEST(RdAnalyze, PicksLeftBitsWithinLimit) {
  const auto data = RealDoubles(kRowgroupSize, 1);
  const RdParams<double> params = RdAnalyzeRowgroup(data.data(), data.size());
  EXPECT_GE(params.right_bits, 64u - kRdMaxLeftBits);
  EXPECT_LT(params.right_bits, 64u);
  EXPECT_GE(params.dict_size, 1u);
  EXPECT_LE(params.dict_size, kRdMaxDictSize);
  EXPECT_LE(params.dict_width, kRdMaxDictWidth);
}

TEST(RdAnalyze, NarrowRangeNeedsTinyDictionary) {
  // All values in [1.0, 1.0000001): sign+exponent+top mantissa bits are
  // constant, so a 1-entry dictionary (0 code bits) should cover the left
  // parts.
  const auto data = RealDoubles(kRowgroupSize, 2, 1.0, 1.0000001);
  const RdParams<double> params = RdAnalyzeRowgroup(data.data(), data.size());
  EXPECT_LE(params.dict_width, 1u);
  const double bits = RdEstimateBitsPerValue(data.data(), 1024, params);
  EXPECT_LT(bits, 58.0);  // Beats raw 64 bits.
}

TEST(RdAnalyze, EstimateAccountsForExceptions) {
  const auto data = RealDoubles(kRowgroupSize, 3);
  RdParams<double> params = RdAnalyzeRowgroup(data.data(), data.size());
  // Break the dictionary on purpose: estimate must rise.
  RdParams<double> broken = params;
  for (unsigned i = 0; i < broken.dict_size; ++i) broken.dict[i] = 0xFFFF;
  EXPECT_GT(RdEstimateBitsPerValue(data.data(), 1024, broken),
            RdEstimateBitsPerValue(data.data(), 1024, params));
}

TEST(RdEncode, BitExactRoundTrip) {
  const auto all = RealDoubles(kRowgroupSize, 4);
  const RdParams<double> params = RdAnalyzeRowgroup(all.data(), all.size());
  const std::vector<double> in(all.begin(), all.begin() + kVectorSize);
  const auto out = RoundTripRd(in, params);
  for (unsigned i = 0; i < kVectorSize; ++i) {
    ASSERT_EQ(BitsOf(out[i]), BitsOf(in[i])) << i;
  }
}

TEST(RdEncode, ExceptionsAreRareOnCoherentData) {
  const auto all = RealDoubles(kRowgroupSize, 5);
  const RdParams<double> params = RdAnalyzeRowgroup(all.data(), all.size());
  RdEncodedVector<double> enc;
  RdEncodeVector(all.data(), kVectorSize, params, &enc);
  // The dictionary was chosen for <= 10% exceptions on the sample.
  EXPECT_LE(enc.exc_count, kVectorSize / 4);
}

TEST(RdEncode, ValuesOutsideDictionaryBecomeExceptions) {
  const auto all = RealDoubles(kRowgroupSize, 6, 1.0, 1.001);
  const RdParams<double> params = RdAnalyzeRowgroup(all.data(), all.size());
  std::vector<double> in(all.begin(), all.begin() + kVectorSize);
  in[17] = 1e300;   // Wildly different front bits.
  in[901] = -2.5;
  RdEncodedVector<double> enc;
  RdEncodeVector(in.data(), kVectorSize, params, &enc);
  EXPECT_GE(enc.exc_count, 2);
  const auto out = RoundTripRd(in, params);
  for (unsigned i = 0; i < kVectorSize; ++i) {
    ASSERT_EQ(BitsOf(out[i]), BitsOf(in[i])) << i;
  }
}

TEST(RdEncode, SpecialValuesRoundTrip) {
  auto in = RealDoubles(kVectorSize, 7);
  in[0] = std::numeric_limits<double>::quiet_NaN();
  in[1] = std::numeric_limits<double>::infinity();
  in[2] = -std::numeric_limits<double>::infinity();
  in[3] = 0.0;
  in[4] = -0.0;
  in[5] = std::numeric_limits<double>::denorm_min();
  const RdParams<double> params = RdAnalyzeRowgroup(in.data(), in.size());
  const auto out = RoundTripRd(in, params);
  for (unsigned i = 0; i < kVectorSize; ++i) {
    ASSERT_EQ(BitsOf(out[i]), BitsOf(in[i])) << i;
  }
}

TEST(RdEncode, PartialVector) {
  const auto all = RealDoubles(kRowgroupSize, 8);
  const RdParams<double> params = RdAnalyzeRowgroup(all.data(), all.size());
  const std::vector<double> in(all.begin(), all.begin() + 100);
  const auto out = RoundTripRd(in, params);
  for (unsigned i = 0; i < 100; ++i) {
    ASSERT_EQ(BitsOf(out[i]), BitsOf(in[i]));
  }
}

TEST(RdEncode, DictionaryProbeTakesFirstMatch) {
  RdParams<double> params;
  params.right_bits = 48;
  params.dict_size = 4;
  params.dict_width = 2;
  params.dict[0] = 0x3FF0;
  params.dict[1] = 0x3FF0;  // Duplicate entry: code 0 must win.
  params.dict[2] = 0x4000;
  params.dict[3] = 0x4010;
  std::vector<double> in(1, DoubleFromBits(uint64_t{0x3FF0} << 48 | 0x1234));
  RdEncodedVector<double> enc;
  RdEncodeVector(in.data(), 1, params, &enc);
  EXPECT_EQ(enc.left_codes[0], 0);
  EXPECT_EQ(enc.exc_count, 0);
}

TEST(RdFloat, BitExactRoundTrip) {
  std::mt19937_64 rng(9);
  std::vector<float> in(kVectorSize);
  for (auto& v : in) {
    v = 0.01f * static_cast<float>(static_cast<double>(rng() >> 11) * 0x1.0p-53 - 0.5);
  }
  const RdParams<float> params = RdAnalyzeRowgroup(in.data(), in.size());
  EXPECT_GE(params.right_bits, 32u - kRdMaxLeftBits);
  RdEncodedVector<float> enc;
  RdEncodeVector(in.data(), kVectorSize, params, &enc);
  std::vector<float> out(kVectorSize);
  RdDecodeVector(enc, params, out.data());
  for (unsigned i = 0; i < kVectorSize; ++i) {
    ASSERT_EQ(BitsOf(out[i]), BitsOf(in[i])) << i;
  }
}

TEST(RdFloat, MlWeightLikeDataCompresses) {
  // Gaussian-ish floats: ALP_rd should land under 32 bits/value estimate
  // (Table 7 reports ~28 bits).
  std::mt19937_64 rng(10);
  std::vector<float> in(kRowgroupSize);
  for (auto& v : in) {
    double u1 = std::max(static_cast<double>(rng() >> 11) * 0x1.0p-53, 1e-12);
    double u2 = static_cast<double>(rng() >> 11) * 0x1.0p-53;
    v = static_cast<float>(0.02 * std::sqrt(-2 * std::log(u1)) *
                           std::cos(6.283185307179586 * u2));
  }
  const RdParams<float> params = RdAnalyzeRowgroup(in.data(), in.size());
  const double bits = RdEstimateBitsPerValue(in.data(), 4096, params);
  EXPECT_LT(bits, 32.0);
}

}  // namespace
}  // namespace alp
