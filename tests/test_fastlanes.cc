// Tests for the FastLanes-style integer compression substrate: bit-packing
// at every width (property sweep via parameterized tests), FFOR (fused and
// unfused), Delta, RLE and Dictionary encodings.

#include <gtest/gtest.h>

#include <limits>
#include <random>
#include <vector>

#include "fastlanes/bitpack.h"
#include "fastlanes/delta.h"
#include "fastlanes/dict.h"
#include "fastlanes/ffor.h"
#include "fastlanes/rle.h"

namespace alp::fastlanes {
namespace {

// ---------------------------------------------------------------------------
// Bit-packing: parameterized sweep over all widths for both lane types.
// ---------------------------------------------------------------------------

class Pack64Test : public ::testing::TestWithParam<unsigned> {};

TEST_P(Pack64Test, RoundTripsRandomValues) {
  const unsigned width = GetParam();
  std::mt19937_64 rng(width * 7919 + 1);
  std::vector<uint64_t> in(kBlockSize);
  for (auto& v : in) v = rng() & LowMask64(width);

  std::vector<uint64_t> packed(kBlockSize, 0xDEADDEADDEADDEADULL);
  std::vector<uint64_t> out(kBlockSize, 1);
  Pack(in.data(), packed.data(), width);
  Unpack(packed.data(), out.data(), width);
  EXPECT_EQ(in, out) << "width=" << width;
}

TEST_P(Pack64Test, RoundTripsExtremes) {
  const unsigned width = GetParam();
  std::vector<uint64_t> in(kBlockSize);
  for (unsigned i = 0; i < kBlockSize; ++i) {
    in[i] = (i % 2 == 0) ? 0 : LowMask64(width);
  }
  std::vector<uint64_t> packed(kBlockSize);
  std::vector<uint64_t> out(kBlockSize);
  Pack(in.data(), packed.data(), width);
  Unpack(packed.data(), out.data(), width);
  EXPECT_EQ(in, out);
}

TEST_P(Pack64Test, PackedSizeMatchesFormula) {
  const unsigned width = GetParam();
  EXPECT_EQ(PackedWords<uint64_t>(width), width * 16);
  EXPECT_EQ(PackedBytes<uint64_t>(width), width * 128);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, Pack64Test, ::testing::Range(0u, 65u));

class Pack32Test : public ::testing::TestWithParam<unsigned> {};

TEST_P(Pack32Test, RoundTripsRandomValues) {
  const unsigned width = GetParam();
  std::mt19937_64 rng(width * 104729 + 3);
  std::vector<uint32_t> in(kBlockSize);
  for (auto& v : in) v = static_cast<uint32_t>(rng()) & LowMask32(width);

  std::vector<uint32_t> packed(kBlockSize, 0xAAAAAAAAu);
  std::vector<uint32_t> out(kBlockSize, 1);
  Pack(in.data(), packed.data(), width);
  Unpack(packed.data(), out.data(), width);
  EXPECT_EQ(in, out) << "width=" << width;
}

INSTANTIATE_TEST_SUITE_P(AllWidths, Pack32Test, ::testing::Range(0u, 33u));

TEST(Pack, InputAboveWidthIsMasked) {
  std::vector<uint64_t> in(kBlockSize, 0xFFFFFFFFFFFFFFFFULL);
  std::vector<uint64_t> packed(kBlockSize);
  std::vector<uint64_t> out(kBlockSize);
  Pack(in.data(), packed.data(), 3);
  Unpack(packed.data(), out.data(), 3);
  for (uint64_t v : out) EXPECT_EQ(v, 7u);
}

TEST(Pack, WidthZeroUnpacksZeros) {
  std::vector<uint64_t> out(kBlockSize, 123);
  Unpack(nullptr, out.data(), 0);
  for (uint64_t v : out) EXPECT_EQ(v, 0u);
}

// ---------------------------------------------------------------------------
// FFOR.
// ---------------------------------------------------------------------------

class FforWidthTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(FforWidthTest, RoundTripsAtTargetWidth) {
  const unsigned width = GetParam();
  std::mt19937_64 rng(width + 17);
  const int64_t base = -123456789;
  std::vector<int64_t> in(kBlockSize);
  for (auto& v : in) {
    v = base + static_cast<int64_t>(rng() & LowMask64(width));
  }
  const FforParams params = FforAnalyze(in.data(), kBlockSize);
  EXPECT_LE(params.width, width);

  std::vector<uint64_t> packed(kBlockSize);
  FforEncode(in.data(), packed.data(), params);
  std::vector<int64_t> out(kBlockSize);
  FforDecode(packed.data(), out.data(), params);
  EXPECT_EQ(in, out);
}

INSTANTIATE_TEST_SUITE_P(Widths, FforWidthTest, ::testing::Range(0u, 65u));

class Ffor32WidthTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(Ffor32WidthTest, RoundTripsAtTargetWidth) {
  const unsigned width = GetParam();
  std::mt19937_64 rng(width + 71);
  const int32_t base = -98765;
  std::vector<int32_t> in(kBlockSize);
  for (auto& v : in) {
    v = base + static_cast<int32_t>(rng() & LowMask32(width));
  }
  const FforParams params = FforAnalyze(in.data(), kBlockSize);
  EXPECT_LE(params.width, width);
  std::vector<uint32_t> packed(kBlockSize);
  FforEncode(in.data(), packed.data(), params);
  std::vector<int32_t> out(kBlockSize);
  FforDecode(packed.data(), out.data(), params);
  EXPECT_EQ(in, out);
}

INSTANTIATE_TEST_SUITE_P(Widths, Ffor32WidthTest, ::testing::Range(0u, 33u));

class DeltaWidthTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(DeltaWidthTest, RoundTripsBoundedDeltas) {
  const unsigned width = GetParam();
  std::mt19937_64 rng(width + 31);
  std::vector<int64_t> in(kBlockSize);
  int64_t cur = -1234567;
  // Deltas whose zig-zag encoding needs exactly <= `width` bits.
  const uint64_t zz_bound = width == 0 ? 1 : (uint64_t{1} << width);
  for (auto& v : in) {
    cur += ZigZagDecode(rng() % zz_bound);
    v = cur;
  }
  const DeltaParams params = DeltaAnalyze(in.data(), kBlockSize);
  EXPECT_LE(params.width, width);
  std::vector<uint64_t> packed(kBlockSize);
  DeltaEncode(in.data(), packed.data(), params);
  std::vector<int64_t> out(kBlockSize);
  DeltaDecode(packed.data(), out.data(), params);
  EXPECT_EQ(in, out);
}

INSTANTIATE_TEST_SUITE_P(Widths, DeltaWidthTest, ::testing::Range(0u, 57u, 4u));

TEST(Ffor, ConstantBlockPacksToZeroBits) {
  std::vector<int64_t> in(kBlockSize, 42);
  const FforParams params = FforAnalyze(in.data(), kBlockSize);
  EXPECT_EQ(params.width, 0u);
  EXPECT_EQ(static_cast<int64_t>(params.base), 42);
  std::vector<uint64_t> packed(1);
  FforEncode(in.data(), packed.data(), params);
  std::vector<int64_t> out(kBlockSize);
  FforDecode(packed.data(), out.data(), params);
  EXPECT_EQ(in, out);
}

TEST(Ffor, NegativeRangeCrossingZero) {
  std::vector<int64_t> in(kBlockSize);
  for (unsigned i = 0; i < kBlockSize; ++i) in[i] = static_cast<int64_t>(i) - 512;
  const FforParams params = FforAnalyze(in.data(), kBlockSize);
  EXPECT_EQ(params.width, 10u);  // Range 1023.
  std::vector<uint64_t> packed(kBlockSize);
  FforEncode(in.data(), packed.data(), params);
  std::vector<int64_t> out(kBlockSize);
  FforDecode(packed.data(), out.data(), params);
  EXPECT_EQ(in, out);
}

TEST(Ffor, FullInt64RangeNeeds64Bits) {
  std::vector<int64_t> in(kBlockSize, 0);
  in[0] = std::numeric_limits<int64_t>::min();
  in[1] = std::numeric_limits<int64_t>::max();
  const FforParams params = FforAnalyze(in.data(), kBlockSize);
  EXPECT_EQ(params.width, 64u);
  std::vector<uint64_t> packed(kBlockSize);
  FforEncode(in.data(), packed.data(), params);
  std::vector<int64_t> out(kBlockSize);
  FforDecode(packed.data(), out.data(), params);
  EXPECT_EQ(in, out);
}

TEST(Ffor, UnfusedDecodeMatchesFused) {
  std::mt19937_64 rng(99);
  std::vector<int64_t> in(kBlockSize);
  for (auto& v : in) v = 1000000 + static_cast<int64_t>(rng() % 100000);
  const FforParams params = FforAnalyze(in.data(), kBlockSize);
  std::vector<uint64_t> packed(kBlockSize);
  FforEncode(in.data(), packed.data(), params);

  std::vector<int64_t> fused(kBlockSize);
  FforDecode(packed.data(), fused.data(), params);
  std::vector<int64_t> unfused(kBlockSize);
  std::vector<uint64_t> scratch(kBlockSize);
  FforDecodeUnfused(packed.data(), unfused.data(), scratch.data(), params);
  EXPECT_EQ(fused, unfused);
}

TEST(Ffor, Int32RoundTrip) {
  std::mt19937_64 rng(5);
  std::vector<int32_t> in(kBlockSize);
  for (auto& v : in) v = -5000 + static_cast<int32_t>(rng() % 10000);
  const FforParams params = FforAnalyze(in.data(), kBlockSize);
  std::vector<uint32_t> packed(kBlockSize);
  FforEncode(in.data(), packed.data(), params);
  std::vector<int32_t> out(kBlockSize);
  FforDecode(packed.data(), out.data(), params);
  EXPECT_EQ(in, out);
}

TEST(Ffor, AnalyzeUsesOnlyFirstNValues) {
  std::vector<int64_t> in(kBlockSize, 7);
  in[100] = 1 << 20;  // Beyond the analyzed prefix.
  const FforParams params = FforAnalyze(in.data(), 50);
  EXPECT_EQ(params.width, 0u);
}

// ---------------------------------------------------------------------------
// Delta.
// ---------------------------------------------------------------------------

TEST(ZigZag, RoundTripsAndOrdersByMagnitude) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  const int64_t values[] = {0, 1, -1, 123456, -123456,
                            std::numeric_limits<int64_t>::max(),
                            std::numeric_limits<int64_t>::min()};
  for (int64_t v : values) EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
}

TEST(Delta, MonotoneSequencePacksNarrow) {
  std::vector<int64_t> in(kBlockSize);
  for (unsigned i = 0; i < kBlockSize; ++i) in[i] = 1000 + 3 * static_cast<int64_t>(i);
  const DeltaParams params = DeltaAnalyze(in.data(), kBlockSize);
  EXPECT_LE(params.width, 4u);  // ZigZag(3) == 6 -> 3 bits.

  std::vector<uint64_t> packed(kBlockSize);
  DeltaEncode(in.data(), packed.data(), params);
  std::vector<int64_t> out(kBlockSize);
  DeltaDecode(packed.data(), out.data(), params);
  EXPECT_EQ(in, out);
}

TEST(Delta, RandomWalkRoundTrips) {
  std::mt19937_64 rng(11);
  std::vector<int64_t> in(kBlockSize);
  int64_t cur = -999;
  for (auto& v : in) {
    cur += static_cast<int64_t>(rng() % 2001) - 1000;
    v = cur;
  }
  const DeltaParams params = DeltaAnalyze(in.data(), kBlockSize);
  std::vector<uint64_t> packed(kBlockSize);
  DeltaEncode(in.data(), packed.data(), params);
  std::vector<int64_t> out(kBlockSize);
  DeltaDecode(packed.data(), out.data(), params);
  EXPECT_EQ(in, out);
}

TEST(Delta, ConstantSequenceIsZeroBits) {
  std::vector<int64_t> in(kBlockSize, -5);
  const DeltaParams params = DeltaAnalyze(in.data(), kBlockSize);
  EXPECT_EQ(params.width, 0u);
  EXPECT_EQ(params.first, -5);
}

// ---------------------------------------------------------------------------
// RLE.
// ---------------------------------------------------------------------------

TEST(Rle, BasicRuns) {
  const double in[] = {1.5, 1.5, 1.5, 2.0, 2.0, 3.0};
  const auto rle = RleEncode(in, 6);
  ASSERT_EQ(rle.values.size(), 3u);
  EXPECT_EQ(rle.values[0], 1.5);
  EXPECT_EQ(rle.lengths[0], 3u);
  EXPECT_EQ(rle.lengths[2], 1u);
  EXPECT_EQ(rle.LogicalSize(), 6u);

  double out[6];
  RleDecode(rle, out);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(out[i], in[i]);
}

TEST(Rle, DistinguishesSignedZeros) {
  const double in[] = {0.0, -0.0, 0.0};
  const auto rle = RleEncode(in, 3);
  EXPECT_EQ(rle.values.size(), 3u);
  double out[3];
  RleDecode(rle, out);
  EXPECT_EQ(BitsOf(out[1]), BitsOf(-0.0));
}

TEST(Rle, NanRunsCompress) {
  const double nan = DoubleFromBits(0x7FF8000000000001ULL);
  const double in[] = {nan, nan, nan, nan};
  const auto rle = RleEncode(in, 4);
  EXPECT_EQ(rle.values.size(), 1u);
  double out[4];
  RleDecode(rle, out);
  for (double v : out) EXPECT_EQ(BitsOf(v), BitsOf(nan));
}

TEST(Rle, EmptyInput) {
  const auto rle = RleEncode(static_cast<const double*>(nullptr), 0);
  EXPECT_TRUE(rle.values.empty());
  EXPECT_EQ(rle.LogicalSize(), 0u);
}

TEST(Rle, AverageRunLength) {
  const double in[] = {1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(AverageRunLength(in, 8), 4.0);
  const double all_distinct[] = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(AverageRunLength(all_distinct, 3), 1.0);
}

TEST(Rle, Int64RoundTrip) {
  std::vector<int64_t> in;
  for (int r = 0; r < 50; ++r) {
    for (int i = 0; i < r + 1; ++i) in.push_back(r * 100);
  }
  const auto rle = RleEncode(in.data(), in.size());
  EXPECT_EQ(rle.values.size(), 50u);
  std::vector<int64_t> out(in.size());
  RleDecode(rle, out.data());
  EXPECT_EQ(in, out);
}

// ---------------------------------------------------------------------------
// Dictionary.
// ---------------------------------------------------------------------------

TEST(Dict, BasicEncodeDecode) {
  const double in[] = {1.5, 2.5, 1.5, 1.5, 3.5, 2.5};
  const auto dict = DictEncode(in, 6, 16);
  ASSERT_TRUE(dict.has_value());
  EXPECT_EQ(dict->dictionary.size(), 3u);
  EXPECT_EQ(dict->code_width(), 2u);
  double out[6];
  DictDecode(*dict, out);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(out[i], in[i]);
}

TEST(Dict, RejectsTooManyDistinct) {
  std::vector<double> in(100);
  for (int i = 0; i < 100; ++i) in[i] = i * 0.5;
  EXPECT_FALSE(DictEncode(in.data(), in.size(), 50).has_value());
}

TEST(Dict, SingleValueCodeWidthZero) {
  std::vector<double> in(10, 7.25);
  const auto dict = DictEncode(in.data(), in.size(), 4);
  ASSERT_TRUE(dict.has_value());
  EXPECT_EQ(dict->code_width(), 0u);
}

TEST(Dict, SignedZerosAreDistinctKeys) {
  const double in[] = {0.0, -0.0};
  const auto dict = DictEncode(in, 2, 8);
  ASSERT_TRUE(dict.has_value());
  EXPECT_EQ(dict->dictionary.size(), 2u);
  double out[2];
  DictDecode(*dict, out);
  EXPECT_EQ(BitsOf(out[0]), BitsOf(0.0));
  EXPECT_EQ(BitsOf(out[1]), BitsOf(-0.0));
}

TEST(Dict, DuplicateFraction) {
  const double in[] = {1.0, 1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(DuplicateFraction(in, 4), 0.5);
  EXPECT_DOUBLE_EQ(DuplicateFraction(in, 0), 0.0);
}

}  // namespace
}  // namespace alp::fastlanes
