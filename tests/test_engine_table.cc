// Tests for the multi-column Table and the two-column filtered aggregate:
// correctness against a scalar reference, zone-map pruning across columns,
// and mixed ALP/uncompressed storage.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "engine/table.h"

namespace alp::engine {
namespace {

struct TestTable {
  std::vector<double> time;   // Sorted (zone maps discriminate).
  std::vector<double> price;
  std::vector<double> qty;
};

TestTable MakeData(size_t n) {
  std::mt19937_64 rng(5);
  TestTable t;
  t.time.resize(n);
  t.price.resize(n);
  t.qty.resize(n);
  for (size_t i = 0; i < n; ++i) {
    t.time[i] = static_cast<double>(i) / 10.0;  // Monotone timestamps.
    t.price[i] = static_cast<double>(rng() % 100000) / 100.0;
    t.qty[i] = static_cast<double>(1 + rng() % 100);
  }
  return t;
}

double Reference(const TestTable& t, double lo, double hi) {
  double sum = 0.0;
  for (size_t i = 0; i < t.time.size(); ++i) {
    if (t.time[i] >= lo && t.time[i] <= hi) sum += t.price[i] * t.qty[i];
  }
  return sum;
}

TEST(Table, ColumnsByName) {
  const auto data = MakeData(kVectorSize);
  Table table;
  table.AddColumn("time", StoredColumn::MakeAlp(data.time.data(), data.time.size()));
  table.AddColumn("price", StoredColumn::MakeUncompressed(data.price));
  EXPECT_EQ(table.column_count(), 2u);
  EXPECT_EQ(table.row_count(), kVectorSize);
  EXPECT_NE(table.Column("time"), nullptr);
  EXPECT_EQ(table.Column("time")->scheme(), "ALP");
  EXPECT_EQ(table.Column("missing"), nullptr);
}

TEST(Table, FilteredDotSumMatchesReference) {
  const auto data = MakeData(kRowgroupSize * 2 + 777);
  Table table;
  table.AddColumn("time", StoredColumn::MakeAlp(data.time.data(), data.time.size()));
  table.AddColumn("price", StoredColumn::MakeAlp(data.price.data(), data.price.size()));
  table.AddColumn("qty", StoredColumn::MakeAlp(data.qty.data(), data.qty.size()));

  ThreadPool pool(2);
  const double lo = 1000.0;
  const double hi = 5000.0;
  const QueryResult r = RunFilteredDotSum(table, "time", lo, hi, "price", "qty", pool);
  const double expected = Reference(data, lo, hi);
  EXPECT_NEAR(r.sum, expected, std::abs(expected) * 1e-9);
}

TEST(Table, PushdownPrunesAllColumns) {
  const auto data = MakeData(kRowgroupSize * 2);
  Table table;
  table.AddColumn("time", StoredColumn::MakeAlp(data.time.data(), data.time.size()));
  table.AddColumn("price", StoredColumn::MakeAlp(data.price.data(), data.price.size()));
  table.AddColumn("qty", StoredColumn::MakeAlp(data.qty.data(), data.qty.size()));

  ThreadPool pool(1);
  // Narrow time window: ~2% of rows qualify -> most vectors pruned.
  const QueryResult r =
      RunFilteredDotSum(table, "time", 100.0, 500.0, "price", "qty", pool);
  const size_t vectors = (table.row_count() + kVectorSize - 1) / kVectorSize;
  EXPECT_GT(r.vectors_skipped, vectors * 9 / 10);
  EXPECT_NEAR(r.sum, Reference(data, 100.0, 500.0), std::abs(r.sum) * 1e-9 + 1e-9);
}

TEST(Table, EmptyRangeSumsToZero) {
  const auto data = MakeData(kVectorSize * 3);
  Table table;
  table.AddColumn("time", StoredColumn::MakeAlp(data.time.data(), data.time.size()));
  table.AddColumn("price", StoredColumn::MakeUncompressed(data.price));
  table.AddColumn("qty", StoredColumn::MakeUncompressed(data.qty));
  ThreadPool pool(2);
  const QueryResult r =
      RunFilteredDotSum(table, "time", 1e9, 2e9, "price", "qty", pool);
  EXPECT_EQ(r.sum, 0.0);
}

TEST(Table, MixedStorageAgrees) {
  const auto data = MakeData(kRowgroupSize + 123);
  ThreadPool pool(2);
  const double lo = 50.0;
  const double hi = 4000.0;

  Table alp_table;
  alp_table.AddColumn("t", StoredColumn::MakeAlp(data.time.data(), data.time.size()));
  alp_table.AddColumn("p", StoredColumn::MakeAlp(data.price.data(), data.price.size()));
  alp_table.AddColumn("q", StoredColumn::MakeAlp(data.qty.data(), data.qty.size()));

  Table raw_table;
  raw_table.AddColumn("t", StoredColumn::MakeUncompressed(data.time));
  raw_table.AddColumn("p", StoredColumn::MakeUncompressed(data.price));
  raw_table.AddColumn("q", StoredColumn::MakeUncompressed(data.qty));

  const QueryResult a = RunFilteredDotSum(alp_table, "t", lo, hi, "p", "q", pool);
  const QueryResult b = RunFilteredDotSum(raw_table, "t", lo, hi, "p", "q", pool);
  EXPECT_NEAR(a.sum, b.sum, std::abs(b.sum) * 1e-9);
  // Uncompressed filter column has no zone maps: nothing skipped.
  EXPECT_EQ(b.vectors_skipped, 0u);
}

}  // namespace
}  // namespace alp::engine
