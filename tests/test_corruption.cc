// Corruption-injection harness for the untrusted-input surface: seeded,
// deterministic mutations (single-bit flips, truncations, header and index
// mutations, pure garbage) applied to v3 column buffers and to every
// baseline codec's stream, then decoded through the fallible paths
// (ColumnReader::Open / TryDecodeAll, Codec::TryDecompress). The single
// invariant everywhere: a mutated buffer either round-trips bit-exactly or
// is rejected with a non-OK Status - never a crash, never an out-of-bounds
// access (the CI sanitizer job runs this file under ASan+UBSan), and never
// silently wrong data. For v3 columns the checksums make the stronger
// property testable: any flipped bit outside the version byte is rejected.
//
// Well over 2000 distinct mutations run per invocation: every bit of two
// small columns is flipped, every strict prefix is tried, plus seeded
// random mutations on a multi-rowgroup column and per-codec streams.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "alp/alp.h"
#include "codecs/codec.h"
#include "test_fixtures.h"
#include "util/bits.h"
#include "util/checksum.h"
#include "util/status.h"

namespace alp {
namespace {

using testutil::AlpSmall;
using testutil::Classify;
using testutil::Corpus;
using testutil::HighPrecisionData;
using testutil::kVersionByte;
using testutil::MutationOutcome;
using testutil::RdSmall;
using testutil::StripToV2;
using testutil::TwoRowgroups;

// ---------------------------------------------------------------------------
// Status / StatusOr substrate.

TEST(Status, OkIsDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(Status::Ok().ok());
}

TEST(Status, ErrorCarriesCodeMessageOffset) {
  const Status s = Status::Corrupt("packed width out of range", 1032);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorrupt);
  EXPECT_EQ(s.message(), "packed width out of range");
  EXPECT_EQ(s.offset(), 1032u);
  EXPECT_EQ(s.ToString(), "CORRUPT: packed width out of range (offset 1032)");

  const Status t = Status::Truncated("stream ends early");
  EXPECT_EQ(t.offset(), Status::kNoOffset);
  EXPECT_EQ(t.ToString(), "TRUNCATED: stream ends early");
}

TEST(Status, EveryCodeHasAName) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kTruncated), "TRUNCATED");
  EXPECT_EQ(StatusCodeName(StatusCode::kCorrupt), "CORRUPT");
  EXPECT_EQ(StatusCodeName(StatusCode::kChecksumMismatch), "CHECKSUM_MISMATCH");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnsupportedVersion),
            "UNSUPPORTED_VERSION");
  EXPECT_EQ(StatusCodeName(StatusCode::kIo), "IO");
}

TEST(StatusOr, HoldsValueOrStatus) {
  StatusOr<std::vector<int>> good(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->size(), 3u);
  EXPECT_EQ((*good)[2], 3);

  StatusOr<std::vector<int>> bad(Status::Truncated("too short", 7));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kTruncated);
  EXPECT_EQ(bad.status().offset(), 7u);

  // Move and copy keep the active member.
  StatusOr<std::vector<int>> moved(std::move(good));
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved->size(), 3u);
  StatusOr<std::vector<int>> copied(bad);
  ASSERT_FALSE(copied.ok());
  copied = moved;
  ASSERT_TRUE(copied.ok());
  EXPECT_EQ(copied->size(), 3u);
}

// ---------------------------------------------------------------------------
// XXH64 checksum.

TEST(Checksum, DeterministicAndSeeded) {
  const std::string bytes = "alp checksum self-test payload";
  const uint64_t a = Checksum64(bytes.data(), bytes.size());
  EXPECT_EQ(a, Checksum64(bytes.data(), bytes.size()));
  EXPECT_NE(a, Checksum64(bytes.data(), bytes.size(), /*seed=*/1));
  EXPECT_NE(a, Checksum64(bytes.data(), bytes.size() - 1));
  EXPECT_EQ(Checksum64(nullptr, 0), Checksum64(nullptr, 0));
  EXPECT_NE(Checksum64(nullptr, 0), Checksum64("x", 1));
}

TEST(Checksum, SingleBitSensitivity) {
  std::mt19937_64 rng(42);
  std::vector<uint8_t> bytes(1024);
  for (auto& b : bytes) b = static_cast<uint8_t>(rng());
  const uint64_t base = Checksum64(bytes.data(), bytes.size());
  for (size_t trial = 0; trial < 256; ++trial) {
    const size_t bit = rng() % (bytes.size() * 8);
    bytes[bit / 8] ^= uint8_t{1} << (bit % 8);
    EXPECT_NE(base, Checksum64(bytes.data(), bytes.size())) << "bit " << bit;
    bytes[bit / 8] ^= uint8_t{1} << (bit % 8);
  }
  EXPECT_EQ(base, Checksum64(bytes.data(), bytes.size()));
}

TEST(Checksum, StreamMatchesOneShot) {
  std::mt19937_64 rng(7);
  std::vector<uint8_t> bytes(4096 + 17);
  for (auto& b : bytes) b = static_cast<uint8_t>(rng());
  const uint64_t expected = Checksum64(bytes.data(), bytes.size(), 99);

  for (const size_t chunk : {size_t{1}, size_t{3}, size_t{31}, size_t{32},
                             size_t{33}, size_t{1000}, bytes.size()}) {
    Checksum64Stream stream(99);
    for (size_t at = 0; at < bytes.size(); at += chunk) {
      stream.Update(bytes.data() + at, std::min(chunk, bytes.size() - at));
    }
    EXPECT_EQ(stream.Finish(), expected) << "chunk " << chunk;
  }
}

// ---------------------------------------------------------------------------
// Column corpora and mutation helpers live in test_fixtures.h, shared with
// the golden-vector and parallel-pipeline suites.

// ---------------------------------------------------------------------------
// Valid buffers through the fallible path.

TEST(ColumnOpen, ValidBuffersRoundTrip) {
  for (const Corpus* corpus : {&AlpSmall(), &RdSmall(), &TwoRowgroups()}) {
    SCOPED_TRACE(corpus->name);
    StatusOr<ColumnReader<double>> reader =
        ColumnReader<double>::Open(corpus->buffer.data(), corpus->buffer.size());
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    EXPECT_EQ(reader->format_version(), kColumnFormatVersion);
    ASSERT_EQ(reader->value_count(), corpus->values.size());

    std::vector<double> out(reader->value_count());
    const Status decode = reader->TryDecodeAll(out.data());
    ASSERT_TRUE(decode.ok()) << decode.ToString();
    EXPECT_EQ(std::memcmp(out.data(), corpus->values.data(),
                          out.size() * sizeof(double)),
              0);

    // Per-vector fallible decode agrees with the bulk path.
    std::vector<double> vec(kVectorSize);
    size_t at = 0;
    for (size_t v = 0; v < reader->vector_count(); ++v) {
      const Status s = reader->TryDecodeVector(v, vec.data());
      ASSERT_TRUE(s.ok()) << s.ToString();
      ASSERT_EQ(std::memcmp(vec.data(), corpus->values.data() + at,
                            reader->VectorLength(v) * sizeof(double)),
                0);
      at += reader->VectorLength(v);
    }
  }
}

TEST(ColumnOpen, RejectsOutOfRangeRequests) {
  const Corpus& corpus = AlpSmall();
  StatusOr<ColumnReader<double>> reader =
      ColumnReader<double>::Open(corpus.buffer.data(), corpus.buffer.size());
  ASSERT_TRUE(reader.ok());
  double out[kVectorSize];
  EXPECT_FALSE(reader->TryDecodeVector(reader->vector_count(), out).ok());
  EXPECT_FALSE(reader->TryDecodeVector(~size_t{0}, out).ok());
}

TEST(ColumnOpen, RejectsTrivialGarbage) {
  EXPECT_EQ(ColumnReader<double>::Open(nullptr, 0).status().code(),
            StatusCode::kTruncated);
  const uint8_t tiny[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_FALSE(ColumnReader<double>::Open(tiny, sizeof(tiny)).ok());

  std::vector<uint8_t> bad = AlpSmall().buffer;
  bad[0] ^= 0xFF;  // Magic.
  StatusOr<ColumnReader<double>> magic =
      ColumnReader<double>::Open(bad.data(), bad.size());
  ASSERT_FALSE(magic.ok());
  EXPECT_EQ(magic.status().code(), StatusCode::kCorrupt);
  EXPECT_EQ(magic.status().message(), "bad magic");

  // Float reader over a double column: wrong type tag.
  EXPECT_FALSE(
      ColumnReader<float>::Open(AlpSmall().buffer.data(), AlpSmall().buffer.size())
          .ok());
}

TEST(ColumnOpen, RejectsUnsupportedVersions) {
  for (const uint8_t version : {uint8_t{0}, uint8_t{1}, uint8_t{4}, uint8_t{99}}) {
    std::vector<uint8_t> bad = AlpSmall().buffer;
    bad[kVersionByte] = version;
    StatusOr<ColumnReader<double>> reader =
        ColumnReader<double>::Open(bad.data(), bad.size());
    ASSERT_FALSE(reader.ok()) << "version " << int{version};
    EXPECT_EQ(reader.status().code(), StatusCode::kUnsupportedVersion);
    EXPECT_EQ(reader.status().message(), "unsupported format version");
  }
}

// ---------------------------------------------------------------------------
// v2 compatibility: checksum sections stripped, version byte set to 2
// (StripToV2 in test_fixtures.h).

TEST(ColumnV2Compat, V2BuffersStillDecode) {
  for (const Corpus* corpus : {&AlpSmall(), &RdSmall(), &TwoRowgroups()}) {
    SCOPED_TRACE(corpus->name);
    const std::vector<uint8_t> v2 = StripToV2(corpus->buffer);
    ASSERT_TRUE(ValidateColumn<double>(v2.data(), v2.size()));

    StatusOr<ColumnReader<double>> reader =
        ColumnReader<double>::Open(v2.data(), v2.size());
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    EXPECT_EQ(reader->format_version(), 2);
    EXPECT_EQ(Classify(v2, corpus->values), MutationOutcome::kRoundTripped);

    // The trusted tier reads v2 too.
    ColumnReader<double> trusted(v2.data(), v2.size());
    ASSERT_TRUE(trusted.ok());
    std::vector<double> out(trusted.value_count());
    trusted.DecodeAll(out.data());
    EXPECT_EQ(std::memcmp(out.data(), corpus->values.data(),
                          out.size() * sizeof(double)),
              0);
  }
}

TEST(ColumnV2Compat, V2SkipsChecksumButKeepsStructure) {
  // Flipping a payload bit in a v2 buffer must never be silently wrong:
  // with no checksum it may still be structurally rejected, or decode to
  // different-but-in-bounds values; the harness only demands no crash here,
  // which the sanitizer job turns into a real check.
  const std::vector<uint8_t> v2 = StripToV2(AlpSmall().buffer);
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> bad = v2;
    const size_t bit = rng() % (bad.size() * 8);
    bad[bit / 8] ^= uint8_t{1} << (bit % 8);
    (void)Classify(bad, AlpSmall().values);  // Must not crash or read OOB.
  }
}

// ---------------------------------------------------------------------------
// Checksum verification on v3 buffers.

TEST(ColumnChecksum, PayloadFlipIsChecksumMismatch) {
  const Corpus& corpus = AlpSmall();
  // The final byte lies inside the last rowgroup's payload.
  std::vector<uint8_t> bad = corpus.buffer;
  bad.back() ^= 0x01;
  StatusOr<ColumnReader<double>> reader =
      ColumnReader<double>::Open(bad.data(), bad.size());
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kChecksumMismatch);
  EXPECT_EQ(reader.status().message(), "rowgroup payload checksum mismatch");
}

TEST(ColumnChecksum, IndexFlipIsChecksumMismatch) {
  const Corpus& corpus = AlpSmall();
  // Byte 8 is value_count: covered by the header checksum.
  std::vector<uint8_t> bad = corpus.buffer;
  bad[8] ^= 0x10;
  StatusOr<ColumnReader<double>> reader =
      ColumnReader<double>::Open(bad.data(), bad.size());
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kChecksumMismatch);
  EXPECT_EQ(reader.status().message(), "column header checksum mismatch");
}

// ---------------------------------------------------------------------------
// Exhaustive single-bit flips: every bit of two small columns.

void FlipEveryBit(const Corpus& corpus) {
  size_t mutations = 0;
  for (size_t byte = 0; byte < corpus.buffer.size(); ++byte) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> bad = corpus.buffer;
      bad[byte] ^= uint8_t{1} << bit;
      const MutationOutcome outcome = Classify(bad, corpus.values);
      ++mutations;
      if (byte == kVersionByte) {
        // A version flip can disable checksum verification (3 -> 2), but
        // even then the decoded values must be exact or rejected.
        ASSERT_NE(outcome, MutationOutcome::kSilentCorruption)
            << corpus.name << " version bit " << bit;
      } else {
        // Every other byte is covered by a checksum: must be rejected.
        ASSERT_EQ(outcome, MutationOutcome::kRejected)
            << corpus.name << " byte " << byte << " bit " << bit;
      }
    }
  }
  EXPECT_GE(mutations, 2000u) << corpus.name;
}

TEST(ColumnBitFlips, EveryBitOfAlpColumnIsCaught) { FlipEveryBit(AlpSmall()); }

TEST(ColumnBitFlips, EveryBitOfRdColumnIsCaught) { FlipEveryBit(RdSmall()); }

TEST(ColumnBitFlips, SeededFlipsOnMultiRowgroupColumn) {
  const Corpus& corpus = TwoRowgroups();
  std::mt19937_64 rng(1234);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> bad = corpus.buffer;
    const size_t bit = rng() % (bad.size() * 8);
    bad[bit / 8] ^= uint8_t{1} << (bit % 8);
    const MutationOutcome outcome = Classify(bad, corpus.values);
    if (bit / 8 == kVersionByte) {
      ASSERT_NE(outcome, MutationOutcome::kSilentCorruption) << "bit " << bit;
    } else {
      ASSERT_EQ(outcome, MutationOutcome::kRejected) << "bit " << bit;
    }
  }
}

// ---------------------------------------------------------------------------
// Truncations.

TEST(ColumnTruncation, EveryPrefixOfV3IsRejected) {
  // The last rowgroup's checksum covers the buffer tail, so even a prefix
  // that only sheds alignment padding is caught on v3.
  const Corpus& corpus = AlpSmall();
  for (size_t len = 0; len < corpus.buffer.size(); ++len) {
    StatusOr<ColumnReader<double>> reader =
        ColumnReader<double>::Open(corpus.buffer.data(), len);
    ASSERT_FALSE(reader.ok()) << "prefix " << len;
  }
}

TEST(ColumnTruncation, EveryPrefixOfV2RejectsOrRoundTrips) {
  // v2 has no checksums: a prefix can only be accepted if it still decodes
  // to exactly the original values (e.g. dropping trailing padding).
  const std::vector<uint8_t> v2 = StripToV2(RdSmall().buffer);
  for (size_t len = 0; len < v2.size(); ++len) {
    const std::vector<uint8_t> prefix(v2.begin(), v2.begin() + len);
    ASSERT_NE(Classify(prefix, RdSmall().values),
              MutationOutcome::kSilentCorruption)
        << "prefix " << len;
  }
}

TEST(ColumnTruncation, SeededTruncationsOfMultiRowgroupColumn) {
  const Corpus& corpus = TwoRowgroups();
  std::mt19937_64 rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t len = rng() % corpus.buffer.size();
    StatusOr<ColumnReader<double>> reader =
        ColumnReader<double>::Open(corpus.buffer.data(), len);
    ASSERT_FALSE(reader.ok()) << "prefix " << len;
  }
}

// ---------------------------------------------------------------------------
// Header/index mutations and garbage buffers.

TEST(ColumnMutation, SeededHeaderAndIndexMutations) {
  const Corpus& corpus = AlpSmall();
  std::mt19937_64 rng(31337);
  const size_t window = std::min<size_t>(corpus.buffer.size(), 192);
  for (int trial = 0; trial < 800; ++trial) {
    std::vector<uint8_t> bad = corpus.buffer;
    const unsigned edits = 1 + static_cast<unsigned>(rng() % 4);
    for (unsigned e = 0; e < edits; ++e) {
      bad[rng() % window] = static_cast<uint8_t>(rng());
    }
    ASSERT_NE(Classify(bad, corpus.values), MutationOutcome::kSilentCorruption)
        << "trial " << trial;
  }
}

TEST(ColumnMutation, SeededWholeBufferMutations) {
  const Corpus& corpus = TwoRowgroups();
  std::mt19937_64 rng(60601);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> bad = corpus.buffer;
    const unsigned edits = 1 + static_cast<unsigned>(rng() % 8);
    for (unsigned e = 0; e < edits; ++e) {
      bad[rng() % bad.size()] = static_cast<uint8_t>(rng());
    }
    ASSERT_NE(Classify(bad, corpus.values), MutationOutcome::kSilentCorruption)
        << "trial " << trial;
  }
}

TEST(ColumnMutation, PureGarbageNeverCrashes) {
  std::mt19937_64 rng(987);
  std::vector<double> empty;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> garbage(rng() % 4096);
    for (auto& b : garbage) b = static_cast<uint8_t>(rng());
    // Some trials get a plausible prefix so validation walks deeper.
    if (trial % 3 == 0 && garbage.size() >= 8) {
      const uint32_t magic = 0x43504C41;
      std::memcpy(garbage.data(), &magic, sizeof(magic));
      garbage[4] = (trial % 2 == 0) ? 2 : 3;
      garbage[5] = 0;
    }
    (void)ValidateColumn<double>(garbage.data(), garbage.size());
    (void)Classify(garbage, empty);  // Must not crash or read OOB.
  }
}

// ---------------------------------------------------------------------------
// Per-codec hardening: every strict prefix, plus seeded bit flips.

template <typename T>
std::vector<T> CodecData(uint64_t seed, size_t n) {
  std::mt19937_64 rng(seed);
  std::vector<T> data(n);
  for (auto& v : data) {
    const int64_t d = static_cast<int64_t>(rng() % 100000) - 50000;
    v = static_cast<T>(static_cast<double>(d) / 10.0);
    if (rng() % 64 == 0) v = static_cast<T>(DoubleFromBits(rng()));
  }
  return data;
}

template <typename T>
void CheckCodecHardening(codecs::Codec<T>& codec, const std::vector<T>& data) {
  SCOPED_TRACE(std::string(codec.name()));
  const size_t n = data.size();
  const std::vector<uint8_t> buffer = codec.Compress(data.data(), n);
  std::vector<T> out(n);

  // The untruncated stream decodes exactly.
  const Status full = codec.TryDecompress(buffer.data(), buffer.size(), n, out.data());
  ASSERT_TRUE(full.ok()) << full.ToString();
  ASSERT_EQ(std::memcmp(out.data(), data.data(), n * sizeof(T)), 0);

  // Every strict prefix: rejected, or (where the lost tail was padding)
  // still bit-exact. Never a crash, never silently different values.
  for (size_t len = 0; len < buffer.size(); ++len) {
    std::fill(out.begin(), out.end(), T{});
    const Status s = codec.TryDecompress(buffer.data(), len, n, out.data());
    if (s.ok()) {
      ASSERT_EQ(std::memcmp(out.data(), data.data(), n * sizeof(T)), 0)
          << "prefix " << len << " of " << buffer.size();
    }
  }

  // Seeded bit flips: no crash / OOB (values may legitimately differ for
  // codecs without checksums, so only memory safety is asserted; the CI
  // sanitizer job makes that assertion real).
  std::mt19937_64 rng(4242);
  for (int trial = 0; trial < 64; ++trial) {
    std::vector<uint8_t> bad = buffer;
    const size_t bit = rng() % (bad.size() * 8);
    bad[bit / 8] ^= uint8_t{1} << (bit % 8);
    (void)codec.TryDecompress(bad.data(), bad.size(), n, out.data());
  }
}

TEST(CodecHardening, DoubleCodecsSurviveTruncationAndFlips) {
  const std::vector<double> data = CodecData<double>(5150, kVectorSize + 313);
  for (const auto& codec : codecs::AllDoubleCodecs()) {
    CheckCodecHardening(*codec, data);
  }
  CheckCodecHardening(*codecs::MakeFpc(), data);
  CheckCodecHardening(*codecs::MakeLz(), data);
  CheckCodecHardening(*codecs::MakeAlpRdCodec(),
                      HighPrecisionData(5151, kVectorSize + 313));
}

TEST(CodecHardening, FloatCodecsSurviveTruncationAndFlips) {
  const std::vector<float> data = CodecData<float>(6160, kVectorSize + 217);
  for (const auto& codec : codecs::AllFloatCodecs()) {
    CheckCodecHardening(*codec, data);
  }
  CheckCodecHardening(*codecs::MakeAlpCodec32(), data);
}

}  // namespace
}  // namespace alp
