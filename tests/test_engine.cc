// Tests for the Tectorwise-style engine: stored-column round trips under
// every storage scheme, SCAN/SUM correctness vs. uncompressed, morsel
// parallelism, and the compression query.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <random>
#include <vector>

#include "data/datasets.h"
#include "engine/operators.h"

namespace alp::engine {
namespace {

std::vector<double> TestData(size_t n) {
  std::mt19937_64 rng(1);
  std::vector<double> data(n);
  for (auto& v : data) {
    v = static_cast<double>(static_cast<int64_t>(rng() % 100000)) / 100.0;
  }
  return data;
}

double ExactSum(const std::vector<double>& data) {
  // The engine sums per rowgroup then across threads; summing per rowgroup
  // here keeps float association comparable.
  double total = 0.0;
  for (size_t off = 0; off < data.size(); off += kRowgroupSize) {
    const size_t len = std::min<size_t>(kRowgroupSize, data.size() - off);
    double rg = 0.0;
    for (size_t i = 0; i < len; ++i) rg += data[off + i];
    total += rg;
  }
  return total;
}

TEST(StoredColumn, UncompressedBasics) {
  auto data = TestData(kRowgroupSize + 500);
  const auto column = StoredColumn::MakeUncompressed(data);
  EXPECT_EQ(column.scheme(), "Uncompressed");
  EXPECT_EQ(column.value_count(), data.size());
  EXPECT_EQ(column.rowgroup_count(), 2u);
  EXPECT_EQ(column.RowgroupLength(1), 500u);
  ASSERT_NE(column.RowgroupPointer(0), nullptr);

  std::vector<double> out(kRowgroupSize);
  column.DecodeRowgroup(0, out.data());
  EXPECT_EQ(out[123], data[123]);
}

TEST(StoredColumn, AlpRoundTrip) {
  const auto data = TestData(kRowgroupSize * 2 + 777);
  const auto column = StoredColumn::MakeAlp(data.data(), data.size());
  EXPECT_EQ(column.scheme(), "ALP");
  EXPECT_LT(column.compressed_bytes(), data.size() * sizeof(double));
  EXPECT_EQ(column.RowgroupPointer(0), nullptr);

  std::vector<double> out(kRowgroupSize);
  for (size_t rg = 0; rg < column.rowgroup_count(); ++rg) {
    column.DecodeRowgroup(rg, out.data());
    const size_t off = rg * kRowgroupSize;
    for (unsigned i = 0; i < column.RowgroupLength(rg); ++i) {
      ASSERT_EQ(out[i], data[off + i]) << rg << ":" << i;
    }
  }
}

TEST(StoredColumn, CodecRoundTrip) {
  const auto data = TestData(kRowgroupSize + 123);
  const auto column =
      StoredColumn::MakeCodec(codecs::MakePatas(), data.data(), data.size());
  EXPECT_EQ(column.scheme(), "Patas");
  std::vector<double> out(kRowgroupSize);
  column.DecodeRowgroup(1, out.data());
  for (unsigned i = 0; i < column.RowgroupLength(1); ++i) {
    ASSERT_EQ(out[i], data[kRowgroupSize + i]);
  }
}

TEST(ThreadPool, RunsEveryWorker) {
  ThreadPool pool(4);
  ASSERT_EQ(pool.size(), 4u);
  std::vector<int> hits(4, 0);
  pool.Run([&](unsigned w) { hits[w] = 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
  // Re-usable across queries.
  pool.Run([&](unsigned w) { hits[w] = 2; });
  for (int h : hits) EXPECT_EQ(h, 2);
}

TEST(ThreadPool, StressManyRounds) {
  ThreadPool pool(4);
  std::atomic<uint64_t> counter{0};
  for (int round = 0; round < 500; ++round) {
    pool.Run([&](unsigned) { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(counter.load(), 500u * 4u);
}

TEST(ThreadPool, SingleWorker) {
  ThreadPool pool(1);
  int hits = 0;
  pool.Run([&](unsigned w) {
    EXPECT_EQ(w, 0u);
    ++hits;
  });
  EXPECT_EQ(hits, 1);
}

TEST(Operators, SumMatchesUncompressed) {
  const auto data = TestData(kRowgroupSize * 3 + 999);
  const double expected = ExactSum(data);

  ThreadPool pool(2);
  const auto uncompressed = StoredColumn::MakeUncompressed(data);
  const auto alp_col = StoredColumn::MakeAlp(data.data(), data.size());
  const auto gorilla =
      StoredColumn::MakeCodec(codecs::MakeGorilla(), data.data(), data.size());

  for (const StoredColumn* column : {&uncompressed, &alp_col, &gorilla}) {
    const QueryResult result = RunSum(*column, pool);
    EXPECT_EQ(result.tuples, data.size()) << column->scheme();
    // ALP decoding is bit-exact so the sum matches to rounding order only;
    // per-rowgroup partials make it exactly comparable.
    EXPECT_NEAR(result.sum, expected, std::abs(expected) * 1e-12) << column->scheme();
  }
}

TEST(Operators, ScanTouchesEverything) {
  const auto data = TestData(kRowgroupSize * 2);
  ThreadPool pool(1);
  const auto column = StoredColumn::MakeAlp(data.data(), data.size());
  const QueryResult result = RunScan(column, pool);
  EXPECT_EQ(result.tuples, data.size());
  EXPECT_GT(result.cycles, 0u);
  // The checksum is the sum of one value per vector.
  double expected = 0.0;
  for (size_t v = 0; v < data.size(); v += kVectorSize) expected += data[v];
  EXPECT_NEAR(result.sum, expected, std::abs(expected) * 1e-12);
}

TEST(Operators, MultiThreadMatchesSingleThread) {
  const auto data = TestData(kRowgroupSize * 4);
  const auto column = StoredColumn::MakeAlp(data.data(), data.size());
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  const QueryResult r1 = RunSum(column, pool1);
  const QueryResult r4 = RunSum(column, pool4);
  EXPECT_NEAR(r1.sum, r4.sum, std::abs(r1.sum) * 1e-12);
  EXPECT_EQ(r4.threads, 4u);
}

TEST(Operators, CompressionQueryReportsCycles) {
  const auto data = TestData(kRowgroupSize);
  const auto column = StoredColumn::MakeAlp(data.data(), data.size());
  const QueryResult result = RunCompression(column, data.data(), data.size());
  EXPECT_GT(result.cycles, 0u);
  EXPECT_GT(result.sum, 0.0);  // Compressed byte count.
  EXPECT_EQ(result.tuples, data.size());
}

TEST(Operators, MetricsArithmetic) {
  QueryResult r;
  r.tuples = 1000;
  r.cycles = 500;
  r.threads = 2;
  EXPECT_DOUBLE_EQ(r.TuplesPerCyclePerCore(), 1.0);
  EXPECT_DOUBLE_EQ(r.CyclesPerTuple(), 1.0);
}

TEST(Operators, FilterSumMatchesReference) {
  // Sorted data so zone-map skipping actually triggers.
  std::vector<double> data(kRowgroupSize * 2);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<double>(i) * 0.5;
  const double lo = 1000.0;
  const double hi = 5000.0;
  double expected = 0.0;
  for (double v : data) expected += (v >= lo && v <= hi) ? v : 0.0;

  ThreadPool pool(2);
  const auto uncompressed = StoredColumn::MakeUncompressed(data);
  const auto alp_col = StoredColumn::MakeAlp(data.data(), data.size());
  const auto zstd_col =
      StoredColumn::MakeCodec(codecs::MakeZstd(), data.data(), data.size());

  for (const StoredColumn* column : {&uncompressed, &alp_col, &zstd_col}) {
    const QueryResult r = RunFilterSum(*column, lo, hi, pool);
    EXPECT_NEAR(r.sum, expected, std::abs(expected) * 1e-12) << column->scheme();
  }
}

TEST(Operators, FilterPushdownSkipsVectors) {
  std::vector<double> data(kRowgroupSize * 2);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<double>(i) * 0.5;
  ThreadPool pool(1);
  const auto alp_col = StoredColumn::MakeAlp(data.data(), data.size());
  // A range covering ~2% of the data: the vast majority of vectors skip.
  const QueryResult r = RunFilterSum(alp_col, 100.0, 2000.0, pool);
  EXPECT_GT(r.vectors_skipped, 150u);

  // Block-based storage cannot skip.
  const auto zstd_col =
      StoredColumn::MakeCodec(codecs::MakeZstd(), data.data(), data.size());
  const QueryResult z = RunFilterSum(zstd_col, 100.0, 2000.0, pool);
  EXPECT_EQ(z.vectors_skipped, 0u);
}

TEST(Operators, FilterEmptyRangeSkipsEverything) {
  std::vector<double> data(kRowgroupSize);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<double>(i);
  ThreadPool pool(1);
  const auto alp_col = StoredColumn::MakeAlp(data.data(), data.size());
  const QueryResult r = RunFilterSum(alp_col, 1e9, 2e9, pool);
  EXPECT_EQ(r.sum, 0.0);
  EXPECT_EQ(r.vectors_skipped, kRowgroupVectors);
}

TEST(Operators, MinMaxFromZoneMapsIsExact) {
  const auto data = TestData(kRowgroupSize * 2 + 555);
  double expected_min = data[0];
  double expected_max = data[0];
  for (double v : data) {
    expected_min = std::min(expected_min, v);
    expected_max = std::max(expected_max, v);
  }

  ThreadPool pool(2);
  const auto alp_col = StoredColumn::MakeAlp(data.data(), data.size());
  double min = 0, max = 0;
  const QueryResult r = RunMinMax(alp_col, pool, &min, &max);
  EXPECT_EQ(min, expected_min);
  EXPECT_EQ(max, expected_max);
  // Answered entirely from zone maps: every vector was skipped.
  EXPECT_EQ(r.vectors_skipped, (data.size() + kVectorSize - 1) / kVectorSize);

  // And the scanning paths agree.
  const auto raw = StoredColumn::MakeUncompressed(data);
  const auto patas = StoredColumn::MakeCodec(codecs::MakePatas(), data.data(),
                                             data.size());
  for (const StoredColumn* column : {&raw, &patas}) {
    double m1 = 0, m2 = 0;
    RunMinMax(*column, pool, &m1, &m2);
    EXPECT_EQ(m1, expected_min) << column->scheme();
    EXPECT_EQ(m2, expected_max) << column->scheme();
  }
}

TEST(Operators, MinMaxIsMuchCheaperOnAlp) {
  const auto data = TestData(kRowgroupSize * 4);
  ThreadPool pool(1);
  const auto alp_col = StoredColumn::MakeAlp(data.data(), data.size());
  const auto raw = StoredColumn::MakeUncompressed(data);
  double a, b;
  const QueryResult fast = RunMinMax(alp_col, pool, &a, &b);
  const QueryResult slow = RunMinMax(raw, pool, &a, &b);
  EXPECT_LT(fast.cycles * 10, slow.cycles);  // Zone maps are ~free.
}

TEST(Operators, WorksOnSurrogateDataset) {
  const auto data = data::Generate(*data::FindDataset("City-Temp"), kRowgroupSize * 2);
  ThreadPool pool(2);
  const auto alp_col = StoredColumn::MakeAlp(data.data(), data.size());
  const auto raw = StoredColumn::MakeUncompressed(data);
  const QueryResult a = RunSum(alp_col, pool);
  const QueryResult b = RunSum(raw, pool);
  EXPECT_NEAR(a.sum, b.sum, std::abs(b.sum) * 1e-9);
}

}  // namespace
}  // namespace alp::engine
