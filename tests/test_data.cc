// Tests that the synthetic dataset surrogates actually exhibit the Table 2
// properties they were parameterized with: determinism, decimal precision,
// duplicate ratios, zero-heaviness, full-precision entropy, and that the ML
// weight generator produces ALP_rd-shaped floats.

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "analysis/metrics.h"
#include "data/datasets.h"
#include "data/generator.h"
#include "data/ml_weights.h"
#include "util/bits.h"

namespace alp::data {
namespace {

TEST(Datasets, ThirtyDatasetsInPaperOrder) {
  const auto& all = AllDatasets();
  ASSERT_EQ(all.size(), 30u);
  EXPECT_EQ(all.front().name, "Air-Pressure");
  EXPECT_EQ(all.back().name, "SD-bench");
  size_t time_series = 0;
  for (const auto& spec : all) time_series += spec.time_series;
  EXPECT_EQ(time_series, 13u);  // Table 1: 13 time series datasets.
}

TEST(Datasets, FindByName) {
  ASSERT_NE(FindDataset("City-Temp"), nullptr);
  EXPECT_EQ(FindDataset("City-Temp")->precision, 1);
  EXPECT_EQ(FindDataset("no-such-dataset"), nullptr);
}

TEST(Datasets, GenerationIsDeterministic) {
  const auto* spec = FindDataset("Stocks-USA");
  ASSERT_NE(spec, nullptr);
  const auto a = Generate(*spec, 10000, 42);
  const auto b = Generate(*spec, 10000, 42);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(BitsOf(a[i]), BitsOf(b[i]));
  const auto c = Generate(*spec, 10000, 43);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) any_diff |= BitsOf(a[i]) != BitsOf(c[i]);
  EXPECT_TRUE(any_diff);
}

TEST(Datasets, RequestedCountIsExact) {
  const auto* spec = FindDataset("Gov/26");
  for (size_t count : {size_t{0}, size_t{1}, size_t{1023}, size_t{100000}}) {
    EXPECT_EQ(Generate(*spec, count).size(), count);
  }
}

TEST(Datasets, DecimalPrecisionMatchesSpec) {
  for (const char* name : {"City-Temp", "Dew-Temp", "Stocks-USA", "Btc-Price"}) {
    const auto* spec = FindDataset(name);
    ASSERT_NE(spec, nullptr);
    const auto data = Generate(*spec, 50000);
    const auto metrics = analysis::ComputeMetrics(data.data(), data.size());
    EXPECT_LE(metrics.precision_max, spec->precision) << name;
    EXPECT_GE(metrics.precision_avg, spec->precision - 1.0) << name;
  }
}

TEST(Datasets, DuplicateFractionIsInTheRightBand) {
  for (const char* name : {"PM10-dust", "Stocks-USA", "Wind-dir", "Arade/4"}) {
    const auto* spec = FindDataset(name);
    const auto data = Generate(*spec, 200000);
    const auto metrics = analysis::ComputeMetrics(data.data(), data.size());
    EXPECT_NEAR(metrics.non_unique_fraction, spec->duplicate_fraction, 0.15) << name;
  }
}

TEST(Datasets, GovDatasetsAreZeroHeavy) {
  for (const char* name : {"Gov/26", "Gov/40"}) {
    const auto data = Generate(*FindDataset(name), 100000);
    size_t zeros = 0;
    for (double v : data) zeros += v == 0.0;
    EXPECT_GT(static_cast<double>(zeros) / data.size(), 0.9) << name;
  }
}

TEST(Datasets, PoiDataHasFullPrecisionMantissas) {
  const auto data = Generate(*FindDataset("POI-lat"), 50000);
  // Virtually no value should round-trip as a short decimal.
  size_t decimalish = 0;
  for (size_t i = 0; i < 1000; ++i) {
    decimalish += analysis::VisiblePrecision(data[i]) <= 10;
  }
  EXPECT_LT(decimalish, 20u);
  // And values stay in the latitude range.
  for (double v : data) {
    ASSERT_GE(v, -0.1);
    ASSERT_LE(v, 1.3);
  }
}

TEST(Datasets, NycLongitudeShape) {
  const auto data = Generate(*FindDataset("NYC/29"), 50000);
  for (size_t i = 0; i < data.size(); i += 500) {
    ASSERT_LT(data[i], -73.8);
    ASSERT_GT(data[i], -74.1);
  }
  const auto metrics = analysis::ComputeMetrics(data.data(), data.size());
  EXPECT_GE(metrics.precision_max, 12);
}

TEST(Datasets, IntegerDatasetsHaveZeroPrecision) {
  const auto data = Generate(*FindDataset("CMS/9"), 50000);
  for (size_t i = 0; i < data.size(); i += 100) {
    ASSERT_EQ(data[i], std::floor(data[i]));
  }
}

TEST(Datasets, TimeSeriesAreLocallySmooth) {
  const auto data = Generate(*FindDataset("Air-Pressure"), 50000);
  const auto metrics = analysis::ComputeMetrics(data.data(), data.size());
  // Table 2: Air-Pressure has tiny per-vector stddev (0.1) vs mean 93.4.
  EXPECT_LT(metrics.value_std, 5.0);
  EXPECT_NEAR(metrics.value_avg, 93.4, 10.0);
}

TEST(Datasets, GenerateAllCoversEverything) {
  const auto all = GenerateAll(2048);
  ASSERT_EQ(all.size(), 30u);
  for (const auto& [spec, data] : all) {
    EXPECT_EQ(data.size(), 2048u) << spec.name;
  }
}

TEST(Rng, SplitMixIsStable) {
  Rng rng(1);
  const uint64_t first = rng.Next();
  Rng rng2(1);
  EXPECT_EQ(rng2.Next(), first);
  // Uniform double in [0, 1).
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(7);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(MlWeights, FourModels) {
  const auto& models = AllModels();
  ASSERT_EQ(models.size(), 4u);
  EXPECT_EQ(models[0].name, "Dino-Vitb16");
  EXPECT_EQ(models[3].paper_param_count, 3000u);
}

TEST(MlWeights, WeightsLookTrained) {
  const auto weights = GenerateWeights(AllModels()[1], 100000);
  ASSERT_EQ(weights.size(), 100000u);
  // Mostly small magnitudes, no NaN/inf, high mantissa entropy.
  std::unordered_set<uint32_t> distinct;
  size_t small = 0;
  for (float w : weights) {
    ASSERT_TRUE(std::isfinite(w));
    small += std::fabs(w) < 1.5f;
    distinct.insert(BitsOf(w));
  }
  EXPECT_GT(small, weights.size() * 95 / 100);
  EXPECT_GT(distinct.size(), weights.size() / 2);  // Near-unique mantissas.
}

TEST(MlWeights, Deterministic) {
  const auto a = GenerateWeights(AllModels()[0], 5000, 1);
  const auto b = GenerateWeights(AllModels()[0], 5000, 1);
  for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(BitsOf(a[i]), BitsOf(b[i]));
}

}  // namespace
}  // namespace alp::data
