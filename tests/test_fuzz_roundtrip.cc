// Deterministic mini-fuzzer: randomized value-class mixtures (decimals of
// every precision, full-precision reals, denormals, huge magnitudes,
// special values, duplicates, sign flips) pushed through the ALP column
// format and every codec, across many seeds. Any bit difference fails.
// This is the repository's broadest invariant: *losslessness is
// unconditional* - no input distribution may break it.
//
// Set ALP_FUZZ_SEED=<n> to shift every stream onto fresh seeds (a cheap
// way to widen coverage in CI without growing the default run). Failure
// messages print the effective seed, so a run under any base can be
// replayed by exporting the same value.

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "alp/alp.h"
#include "alp/appender.h"
#include "codecs/codec.h"
#include "util/bits.h"

namespace alp {
namespace {

/// ALP_FUZZ_SEED, else 0: added to every per-test seed.
uint64_t BaseSeed() {
  static const uint64_t base = [] {
    const char* env = std::getenv("ALP_FUZZ_SEED");
    return env != nullptr ? std::strtoull(env, nullptr, 10) : uint64_t{0};
  }();
  return base;
}

/// A randomized mixture of value classes; the mix proportions themselves
/// are drawn from the seed.
std::vector<double> FuzzData(uint64_t seed, size_t n) {
  std::mt19937_64 rng(seed);
  std::vector<double> data(n);

  // Per-seed class weights.
  const unsigned w_decimal = 1 + static_cast<unsigned>(rng() % 10);
  const unsigned w_real = static_cast<unsigned>(rng() % 4);
  const unsigned w_special = static_cast<unsigned>(rng() % 2);
  const unsigned w_extreme = static_cast<unsigned>(rng() % 2);
  const unsigned w_dup = static_cast<unsigned>(rng() % 6);
  const unsigned total = w_decimal + w_real + w_special + w_extreme + w_dup + 1;
  const int precision = static_cast<int>(rng() % 19);

  double prev = 1.0;
  for (auto& v : data) {
    const unsigned pick = static_cast<unsigned>(rng() % total);
    if (pick < w_decimal) {
      const int64_t d = static_cast<int64_t>(rng() % 100000000) - 50000000;
      const double f10 = AlpTraits<double>::kF10[precision % 19];
      v = static_cast<double>(d) / f10;
    } else if (pick < w_decimal + w_real) {
      v = DoubleFromBits((rng() & 0x000FFFFFFFFFFFFFULL) | 0x3FE0000000000000ULL);
    } else if (pick < w_decimal + w_real + w_special) {
      switch (rng() % 6) {
        case 0: v = std::numeric_limits<double>::quiet_NaN(); break;
        case 1: v = DoubleFromBits(0x7FF8000000000000ULL | (rng() & 0xFFFF)); break;
        case 2: v = std::numeric_limits<double>::infinity(); break;
        case 3: v = -std::numeric_limits<double>::infinity(); break;
        case 4: v = -0.0; break;
        default: v = 0.0; break;
      }
    } else if (pick < w_decimal + w_real + w_special + w_extreme) {
      switch (rng() % 4) {
        case 0: v = std::numeric_limits<double>::denorm_min(); break;
        case 1: v = std::numeric_limits<double>::max(); break;
        case 2: v = DoubleFromBits(rng()); break;  // Arbitrary bit pattern.
        default: v = 1e308 * ((rng() % 2) ? 1.0 : -1.0); break;
      }
    } else {
      v = prev;  // Duplicate.
    }
    prev = v;
  }
  return data;
}

class FuzzSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSeedTest, AlpColumnRoundTrips) {
  const uint64_t seed = BaseSeed() + GetParam();
  std::mt19937_64 size_rng(seed * 3 + 1);
  const size_t n = 1 + size_rng() % (3 * kVectorSize);
  const auto data = FuzzData(seed, n);

  const auto buffer = CompressColumn(data.data(), data.size());
  ASSERT_TRUE(ValidateColumn<double>(buffer.data(), buffer.size()));
  std::vector<double> out(data.size());
  DecompressColumn(buffer, out.data());
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(BitsOf(out[i]), BitsOf(data[i])) << "seed=" << seed << " i=" << i;
  }
}

TEST_P(FuzzSeedTest, AppenderMatchesOneShot) {
  const uint64_t seed = BaseSeed() + GetParam() + 1000;
  const auto data = FuzzData(seed, 2 * kVectorSize + 77);
  ColumnAppender<double> appender;
  appender.AppendBatch(data.data(), data.size());
  EXPECT_EQ(appender.Finish(), CompressColumn(data.data(), data.size()))
      << "seed=" << seed;
}

TEST_P(FuzzSeedTest, AllCodecsRoundTrip) {
  const uint64_t seed = BaseSeed() + GetParam() + 2000;
  const auto data = FuzzData(seed, 3000);
  for (const auto& codec : codecs::AllDoubleCodecs()) {
    const auto compressed = codec->Compress(data.data(), data.size());
    std::vector<double> out(data.size(), -1.0);
    codec->Decompress(compressed.data(), compressed.size(), data.size(), out.data());
    for (size_t i = 0; i < data.size(); ++i) {
      ASSERT_EQ(BitsOf(out[i]), BitsOf(data[i]))
          << codec->name() << " seed=" << seed << " i=" << i;
    }
  }
}

TEST_P(FuzzSeedTest, CascadeRoundTrips) {
  const uint64_t seed = BaseSeed() + GetParam() + 3000;
  const auto data = FuzzData(seed, 50000);
  const auto buffer = CascadeCompress(data.data(), data.size());
  std::vector<double> out(data.size());
  CascadeDecompress(buffer, out.data());
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(BitsOf(out[i]), BitsOf(data[i])) << "seed=" << seed << " i=" << i;
  }
}

TEST_P(FuzzSeedTest, DeltaModeRoundTrips) {
  const uint64_t seed = BaseSeed() + GetParam() + 4000;
  const auto data = FuzzData(seed, 2 * kVectorSize);
  SamplerConfig config;
  config.try_delta_encoding = true;
  const auto buffer = CompressColumn(data.data(), data.size(), config);
  std::vector<double> out(data.size());
  DecompressColumn(buffer, out.data());
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(BitsOf(out[i]), BitsOf(data[i])) << "seed=" << seed << " i=" << i;
  }
}

TEST_P(FuzzSeedTest, FloatColumnRoundTrips) {
  const uint64_t seed = BaseSeed() + GetParam() + 5000;
  std::mt19937_64 rng(seed);
  const size_t n = 1 + rng() % (2 * kVectorSize);
  std::vector<float> data(n);
  const int precision = static_cast<int>(rng() % 11);
  for (auto& v : data) {
    switch (rng() % 8) {
      case 0:
        v = std::numeric_limits<float>::quiet_NaN();
        break;
      case 1:
        v = FloatFromBits(static_cast<uint32_t>(rng()));  // Arbitrary bits.
        break;
      case 2:
        v = -0.0f;
        break;
      default: {
        const int32_t d = static_cast<int32_t>(rng() % 1000000) - 500000;
        v = static_cast<float>(static_cast<double>(d) /
                               AlpTraits<double>::kF10[precision]);
        break;
      }
    }
  }
  const auto buffer = CompressColumn(data.data(), data.size());
  ASSERT_TRUE(ValidateColumn<float>(buffer.data(), buffer.size()));
  std::vector<float> out(data.size());
  DecompressColumn(buffer, out.data());
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(BitsOf(out[i]), BitsOf(data[i])) << "seed=" << seed << " i=" << i;
  }
}

TEST_P(FuzzSeedTest, FloatCodecsRoundTrip) {
  const uint64_t seed = BaseSeed() + GetParam() + 6000;
  std::mt19937_64 rng(seed);
  std::vector<float> data(2000);
  for (auto& v : data) {
    v = (rng() % 19 == 0) ? FloatFromBits(static_cast<uint32_t>(rng()))
                          : static_cast<float>((static_cast<double>(rng() >> 11) *
                                                    0x1.0p-53 -
                                                0.5) *
                                               0.1);
  }
  for (const auto& codec : codecs::AllFloatCodecs()) {
    const auto compressed = codec->Compress(data.data(), data.size());
    std::vector<float> out(data.size(), -1.0f);
    codec->Decompress(compressed.data(), compressed.size(), data.size(), out.data());
    for (size_t i = 0; i < data.size(); ++i) {
      ASSERT_EQ(BitsOf(out[i]), BitsOf(data[i]))
          << codec->name() << " seed=" << seed << " i=" << i;
    }
  }
}

/// A seeded mixture of 32-bit value classes mirroring FuzzData: decimals of
/// varying precision, raw bit patterns, NaN payloads, infinities,
/// denormals, signed zeros, duplicates.
std::vector<float> FuzzDataFloat(uint64_t seed, size_t n) {
  std::mt19937_64 rng(seed);
  std::vector<float> data(n);
  const int precision = static_cast<int>(rng() % 11);
  float prev = 1.0f;
  for (auto& v : data) {
    switch (rng() % 12) {
      case 0: v = FloatFromBits(static_cast<uint32_t>(rng())); break;
      case 1:
        v = FloatFromBits(0x7FC00000u | (static_cast<uint32_t>(rng()) & 0x3FFFFF));
        break;  // NaN payloads.
      case 2: v = std::numeric_limits<float>::infinity(); break;
      case 3: v = -std::numeric_limits<float>::infinity(); break;
      case 4:
        v = FloatFromBits(static_cast<uint32_t>(rng()) & 0x007FFFFF);
        break;  // Denormals (and occasionally zero).
      case 5: v = -0.0f; break;
      case 6: v = prev; break;
      default: {
        const int32_t d = static_cast<int32_t>(rng() % 1000000) - 500000;
        v = static_cast<float>(static_cast<double>(d) /
                               AlpTraits<double>::kF10[precision]);
        break;
      }
    }
    prev = v;
  }
  return data;
}

TEST_P(FuzzSeedTest, FloatMixtureRoundTripsEverywhere) {
  const uint64_t seed = BaseSeed() + GetParam() + 7000;
  std::mt19937_64 size_rng(seed ^ 0x5EED);
  const size_t n = 1 + size_rng() % (2 * kVectorSize);
  const auto data = FuzzDataFloat(seed, n);

  const auto buffer = CompressColumn(data.data(), data.size());
  ASSERT_TRUE(ValidateColumn<float>(buffer.data(), buffer.size()));
  std::vector<float> out(data.size());
  DecompressColumn(buffer, out.data());
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(BitsOf(out[i]), BitsOf(data[i])) << "seed=" << seed << " i=" << i;
  }

  for (const auto& codec : codecs::AllFloatCodecs()) {
    const auto compressed = codec->Compress(data.data(), data.size());
    std::vector<float> cout(data.size(), -1.0f);
    codec->Decompress(compressed.data(), compressed.size(), data.size(),
                      cout.data());
    for (size_t i = 0; i < data.size(); ++i) {
      ASSERT_EQ(BitsOf(cout[i]), BitsOf(data[i]))
          << codec->name() << " seed=" << seed << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest, ::testing::Range(uint64_t{0}, uint64_t{24}));

// ---------------------------------------------------------------------------
// Special-value torture vectors: adversarial compositions that historically
// break floating-point codecs (NaN payload preservation, ±inf runs,
// denormal-only inputs, -0.0 vs 0.0, all-equal columns). Every pattern must
// survive every codec bit-exactly - these are fixed, not seeded, so a
// regression names the exact pattern.

std::vector<std::pair<std::string, std::vector<double>>> TortureColumns() {
  std::vector<std::pair<std::string, std::vector<double>>> cases;
  const size_t n = kVectorSize + 17;
  std::mt19937_64 rng(0xA17);

  std::vector<double> nans(n);
  for (size_t i = 0; i < n; ++i) {
    // Quiet and "signaling-shaped" payloads, both signs, never the inf bits.
    const uint64_t sign = (i % 2) ? 0x8000000000000000ULL : 0;
    const uint64_t payload = (rng() & 0x0007FFFFFFFFFFFFULL) | 1;
    const uint64_t quiet = (i % 3 == 0) ? 0x0008000000000000ULL : 0;
    nans[i] = DoubleFromBits(sign | 0x7FF0000000000000ULL | quiet | payload);
  }
  cases.emplace_back("nan_payloads", std::move(nans));

  std::vector<double> infs(n);
  for (size_t i = 0; i < n; ++i) {
    infs[i] = (i % 3 == 0)   ? std::numeric_limits<double>::infinity()
              : (i % 3 == 1) ? -std::numeric_limits<double>::infinity()
                             : static_cast<double>(i) * 0.25;
  }
  cases.emplace_back("infinity_runs", std::move(infs));

  std::vector<double> denorm(n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t sign = (rng() % 2) ? 0x8000000000000000ULL : 0;
    denorm[i] = (i % 5 == 0)
                    ? std::numeric_limits<double>::denorm_min()
                    : DoubleFromBits(sign | ((rng() % 0x000FFFFFFFFFFFFFULL) + 1));
  }
  cases.emplace_back("denormals_only", std::move(denorm));

  std::vector<double> zeros(n);
  for (size_t i = 0; i < n; ++i) zeros[i] = (i % 2) ? -0.0 : 0.0;
  cases.emplace_back("signed_zeros", std::move(zeros));

  cases.emplace_back("all_equal", std::vector<double>(n, 1234.5678));
  cases.emplace_back("all_equal_nan",
                     std::vector<double>(
                         n, DoubleFromBits(0x7FF800000000BEEFULL)));

  std::vector<double> extremes(n);
  for (size_t i = 0; i < n; ++i) {
    switch (i % 5) {
      case 0: extremes[i] = std::numeric_limits<double>::max(); break;
      case 1: extremes[i] = std::numeric_limits<double>::lowest(); break;
      case 2: extremes[i] = std::numeric_limits<double>::min(); break;
      case 3: extremes[i] = 1e308; break;
      default: extremes[i] = -1e-308; break;
    }
  }
  cases.emplace_back("extreme_magnitudes", std::move(extremes));

  cases.emplace_back("single_nan",
                     std::vector<double>{
                         DoubleFromBits(0x7FF0000000000001ULL)});
  return cases;
}

TEST(TortureVectors, DoubleColumnAndCodecsRoundTrip) {
  for (const auto& [name, data] : TortureColumns()) {
    SCOPED_TRACE(name);
    const auto buffer = CompressColumn(data.data(), data.size());
    ASSERT_TRUE(ValidateColumn<double>(buffer.data(), buffer.size()));
    std::vector<double> out(data.size());
    DecompressColumn(buffer, out.data());
    for (size_t i = 0; i < data.size(); ++i) {
      ASSERT_EQ(BitsOf(out[i]), BitsOf(data[i])) << "i=" << i;
    }

    for (const auto& codec : codecs::AllDoubleCodecs()) {
      const auto compressed = codec->Compress(data.data(), data.size());
      std::vector<double> cout(data.size(), -1.0);
      codec->Decompress(compressed.data(), compressed.size(), data.size(),
                        cout.data());
      for (size_t i = 0; i < data.size(); ++i) {
        ASSERT_EQ(BitsOf(cout[i]), BitsOf(data[i]))
            << codec->name() << " i=" << i;
      }
    }

    const auto cascade = CascadeCompress(data.data(), data.size());
    std::vector<double> casc_out(data.size());
    CascadeDecompress(cascade, casc_out.data());
    for (size_t i = 0; i < data.size(); ++i) {
      ASSERT_EQ(BitsOf(casc_out[i]), BitsOf(data[i])) << "cascade i=" << i;
    }
  }
}

TEST(TortureVectors, FloatColumnAndCodecsRoundTrip) {
  std::vector<std::pair<std::string, std::vector<float>>> cases;
  const size_t n = kVectorSize + 17;
  std::mt19937_64 rng(0xF17);

  std::vector<float> nans(n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t sign = (i % 2) ? 0x80000000u : 0;
    const uint32_t payload = (static_cast<uint32_t>(rng()) & 0x003FFFFF) | 1;
    const uint32_t quiet = (i % 3 == 0) ? 0x00400000u : 0;
    nans[i] = FloatFromBits(sign | 0x7F800000u | quiet | payload);
  }
  cases.emplace_back("nan_payloads", std::move(nans));

  std::vector<float> infs(n);
  for (size_t i = 0; i < n; ++i) {
    infs[i] = (i % 3 == 0)   ? std::numeric_limits<float>::infinity()
              : (i % 3 == 1) ? -std::numeric_limits<float>::infinity()
                             : static_cast<float>(i) * 0.25f;
  }
  cases.emplace_back("infinity_runs", std::move(infs));

  std::vector<float> denorm(n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t sign = (rng() % 2) ? 0x80000000u : 0;
    denorm[i] = (i % 5 == 0)
                    ? std::numeric_limits<float>::denorm_min()
                    : FloatFromBits(sign | ((static_cast<uint32_t>(rng()) %
                                             0x007FFFFFu) +
                                            1));
  }
  cases.emplace_back("denormals_only", std::move(denorm));

  std::vector<float> zeros(n);
  for (size_t i = 0; i < n; ++i) zeros[i] = (i % 2) ? -0.0f : 0.0f;
  cases.emplace_back("signed_zeros", std::move(zeros));

  cases.emplace_back("all_equal", std::vector<float>(n, 1234.5f));

  for (const auto& [name, data] : cases) {
    SCOPED_TRACE(name);
    const auto buffer = CompressColumn(data.data(), data.size());
    ASSERT_TRUE(ValidateColumn<float>(buffer.data(), buffer.size()));
    std::vector<float> out(data.size());
    DecompressColumn(buffer, out.data());
    for (size_t i = 0; i < data.size(); ++i) {
      ASSERT_EQ(BitsOf(out[i]), BitsOf(data[i])) << "i=" << i;
    }

    for (const auto& codec : codecs::AllFloatCodecs()) {
      const auto compressed = codec->Compress(data.data(), data.size());
      std::vector<float> cout(data.size(), -1.0f);
      codec->Decompress(compressed.data(), compressed.size(), data.size(),
                        cout.data());
      for (size_t i = 0; i < data.size(); ++i) {
        ASSERT_EQ(BitsOf(cout[i]), BitsOf(data[i]))
            << codec->name() << " i=" << i;
      }
    }
  }
}

}  // namespace
}  // namespace alp
