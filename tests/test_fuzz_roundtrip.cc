// Deterministic mini-fuzzer: randomized value-class mixtures (decimals of
// every precision, full-precision reals, denormals, huge magnitudes,
// special values, duplicates, sign flips) pushed through the ALP column
// format and every codec, across many seeds. Any bit difference fails.
// This is the repository's broadest invariant: *losslessness is
// unconditional* - no input distribution may break it.

#include <gtest/gtest.h>

#include <limits>
#include <random>
#include <vector>

#include "alp/alp.h"
#include "alp/appender.h"
#include "codecs/codec.h"
#include "util/bits.h"

namespace alp {
namespace {

/// A randomized mixture of value classes; the mix proportions themselves
/// are drawn from the seed.
std::vector<double> FuzzData(uint64_t seed, size_t n) {
  std::mt19937_64 rng(seed);
  std::vector<double> data(n);

  // Per-seed class weights.
  const unsigned w_decimal = 1 + static_cast<unsigned>(rng() % 10);
  const unsigned w_real = static_cast<unsigned>(rng() % 4);
  const unsigned w_special = static_cast<unsigned>(rng() % 2);
  const unsigned w_extreme = static_cast<unsigned>(rng() % 2);
  const unsigned w_dup = static_cast<unsigned>(rng() % 6);
  const unsigned total = w_decimal + w_real + w_special + w_extreme + w_dup + 1;
  const int precision = static_cast<int>(rng() % 19);

  double prev = 1.0;
  for (auto& v : data) {
    const unsigned pick = static_cast<unsigned>(rng() % total);
    if (pick < w_decimal) {
      const int64_t d = static_cast<int64_t>(rng() % 100000000) - 50000000;
      const double f10 = AlpTraits<double>::kF10[precision % 19];
      v = static_cast<double>(d) / f10;
    } else if (pick < w_decimal + w_real) {
      v = DoubleFromBits((rng() & 0x000FFFFFFFFFFFFFULL) | 0x3FE0000000000000ULL);
    } else if (pick < w_decimal + w_real + w_special) {
      switch (rng() % 6) {
        case 0: v = std::numeric_limits<double>::quiet_NaN(); break;
        case 1: v = DoubleFromBits(0x7FF8000000000000ULL | (rng() & 0xFFFF)); break;
        case 2: v = std::numeric_limits<double>::infinity(); break;
        case 3: v = -std::numeric_limits<double>::infinity(); break;
        case 4: v = -0.0; break;
        default: v = 0.0; break;
      }
    } else if (pick < w_decimal + w_real + w_special + w_extreme) {
      switch (rng() % 4) {
        case 0: v = std::numeric_limits<double>::denorm_min(); break;
        case 1: v = std::numeric_limits<double>::max(); break;
        case 2: v = DoubleFromBits(rng()); break;  // Arbitrary bit pattern.
        default: v = 1e308 * ((rng() % 2) ? 1.0 : -1.0); break;
      }
    } else {
      v = prev;  // Duplicate.
    }
    prev = v;
  }
  return data;
}

class FuzzSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSeedTest, AlpColumnRoundTrips) {
  std::mt19937_64 size_rng(GetParam() * 3 + 1);
  const size_t n = 1 + size_rng() % (3 * kVectorSize);
  const auto data = FuzzData(GetParam(), n);

  const auto buffer = CompressColumn(data.data(), data.size());
  ASSERT_TRUE(ValidateColumn<double>(buffer.data(), buffer.size()));
  std::vector<double> out(data.size());
  DecompressColumn(buffer, out.data());
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(BitsOf(out[i]), BitsOf(data[i])) << "seed=" << GetParam() << " i=" << i;
  }
}

TEST_P(FuzzSeedTest, AppenderMatchesOneShot) {
  const auto data = FuzzData(GetParam() + 1000, 2 * kVectorSize + 77);
  ColumnAppender<double> appender;
  appender.AppendBatch(data.data(), data.size());
  EXPECT_EQ(appender.Finish(), CompressColumn(data.data(), data.size()));
}

TEST_P(FuzzSeedTest, AllCodecsRoundTrip) {
  const auto data = FuzzData(GetParam() + 2000, 3000);
  for (const auto& codec : codecs::AllDoubleCodecs()) {
    const auto compressed = codec->Compress(data.data(), data.size());
    std::vector<double> out(data.size(), -1.0);
    codec->Decompress(compressed.data(), compressed.size(), data.size(), out.data());
    for (size_t i = 0; i < data.size(); ++i) {
      ASSERT_EQ(BitsOf(out[i]), BitsOf(data[i]))
          << codec->name() << " seed=" << GetParam() << " i=" << i;
    }
  }
}

TEST_P(FuzzSeedTest, CascadeRoundTrips) {
  const auto data = FuzzData(GetParam() + 3000, 50000);
  const auto buffer = CascadeCompress(data.data(), data.size());
  std::vector<double> out(data.size());
  CascadeDecompress(buffer, out.data());
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(BitsOf(out[i]), BitsOf(data[i])) << "seed=" << GetParam() << " i=" << i;
  }
}

TEST_P(FuzzSeedTest, DeltaModeRoundTrips) {
  const auto data = FuzzData(GetParam() + 4000, 2 * kVectorSize);
  SamplerConfig config;
  config.try_delta_encoding = true;
  const auto buffer = CompressColumn(data.data(), data.size(), config);
  std::vector<double> out(data.size());
  DecompressColumn(buffer, out.data());
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(BitsOf(out[i]), BitsOf(data[i])) << "seed=" << GetParam() << " i=" << i;
  }
}

TEST_P(FuzzSeedTest, FloatColumnRoundTrips) {
  std::mt19937_64 rng(GetParam() + 5000);
  const size_t n = 1 + rng() % (2 * kVectorSize);
  std::vector<float> data(n);
  const int precision = static_cast<int>(rng() % 11);
  for (auto& v : data) {
    switch (rng() % 8) {
      case 0:
        v = std::numeric_limits<float>::quiet_NaN();
        break;
      case 1:
        v = FloatFromBits(static_cast<uint32_t>(rng()));  // Arbitrary bits.
        break;
      case 2:
        v = -0.0f;
        break;
      default: {
        const int32_t d = static_cast<int32_t>(rng() % 1000000) - 500000;
        v = static_cast<float>(static_cast<double>(d) /
                               AlpTraits<double>::kF10[precision]);
        break;
      }
    }
  }
  const auto buffer = CompressColumn(data.data(), data.size());
  ASSERT_TRUE(ValidateColumn<float>(buffer.data(), buffer.size()));
  std::vector<float> out(data.size());
  DecompressColumn(buffer, out.data());
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(BitsOf(out[i]), BitsOf(data[i])) << "seed=" << GetParam() << " i=" << i;
  }
}

TEST_P(FuzzSeedTest, FloatCodecsRoundTrip) {
  std::mt19937_64 rng(GetParam() + 6000);
  std::vector<float> data(2000);
  for (auto& v : data) {
    v = (rng() % 19 == 0) ? FloatFromBits(static_cast<uint32_t>(rng()))
                          : static_cast<float>((static_cast<double>(rng() >> 11) *
                                                    0x1.0p-53 -
                                                0.5) *
                                               0.1);
  }
  for (const auto& codec : codecs::AllFloatCodecs()) {
    const auto compressed = codec->Compress(data.data(), data.size());
    std::vector<float> out(data.size(), -1.0f);
    codec->Decompress(compressed.data(), compressed.size(), data.size(), out.data());
    for (size_t i = 0; i < data.size(); ++i) {
      ASSERT_EQ(BitsOf(out[i]), BitsOf(data[i]))
          << codec->name() << " seed=" << GetParam() << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest, ::testing::Range(uint64_t{0}, uint64_t{24}));

}  // namespace
}  // namespace alp
