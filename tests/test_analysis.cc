// Tests for the Table 2 metric computation and the Figure 3 best-(e,f)
// combination analysis.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "analysis/combinations.h"
#include "analysis/metrics.h"
#include "data/datasets.h"

namespace alp::analysis {
namespace {

TEST(VisiblePrecision, KnownValues) {
  EXPECT_EQ(VisiblePrecision(0.0), 0);
  EXPECT_EQ(VisiblePrecision(42.0), 0);
  EXPECT_EQ(VisiblePrecision(0.5), 1);
  EXPECT_EQ(VisiblePrecision(8.0605), 4);
  EXPECT_EQ(VisiblePrecision(-0.001), 3);
  EXPECT_EQ(VisiblePrecision(123000.0), 0);
  EXPECT_EQ(VisiblePrecision(1.25e-5), 7);   // 0.0000125
  EXPECT_EQ(VisiblePrecision(1.5e8), 0);
  EXPECT_EQ(VisiblePrecision(std::numeric_limits<double>::quiet_NaN()), 0);
  EXPECT_EQ(VisiblePrecision(std::numeric_limits<double>::infinity()), 0);
}

TEST(VisiblePrecision, FullPrecisionReals) {
  // 1/3 has no short decimal representation: precision maxes out.
  EXPECT_GE(VisiblePrecision(1.0 / 3.0), 15);
}

TEST(Metrics, EmptyInput) {
  const DatasetMetrics m = ComputeMetrics(nullptr, 0);
  EXPECT_EQ(m.precision_max, 0);
}

TEST(Metrics, TwoDecimalPrices) {
  std::mt19937_64 rng(1);
  std::vector<double> data(50000);
  for (auto& v : data) {
    v = static_cast<double>(static_cast<int64_t>(rng() % 100000)) / 100.0;
  }
  const DatasetMetrics m = ComputeMetrics(data.data(), data.size());
  EXPECT_LE(m.precision_max, 2);
  EXPECT_GE(m.precision_avg, 1.0);
  // The paper's key finding: a high exponent succeeds on ~100% of decimals.
  EXPECT_GT(m.success_dataset, 0.99);
  EXPECT_GE(m.best_dataset_exponent, 10);
  // Per-vector never beats... is at least the dataset-level rate.
  EXPECT_GE(m.success_per_vector, m.success_dataset - 1e-9);
  // Visible-precision-based encoding is notably weaker (Table 2: C11 < C12).
  EXPECT_LE(m.success_per_value, m.success_dataset + 1e-9);
}

TEST(Metrics, FullEntropyRealsFailDecimalEncoding) {
  std::mt19937_64 rng(2);
  std::vector<double> data(20000);
  for (auto& v : data) v = static_cast<double>(rng() >> 11) * 0x1.0p-53;
  const DatasetMetrics m = ComputeMetrics(data.data(), data.size());
  EXPECT_LT(m.success_dataset, 0.9);
  EXPECT_GE(m.precision_max, 15);
}

TEST(Metrics, DuplicatesRaiseNonUniqueFraction) {
  std::vector<double> data(10240, 7.5);
  const DatasetMetrics m = ComputeMetrics(data.data(), data.size());
  EXPECT_NEAR(m.non_unique_fraction, 1.0 - 1.0 / 1024.0, 1e-9);
  EXPECT_NEAR(m.value_avg, 7.5, 1e-9);
  EXPECT_NEAR(m.value_std, 0.0, 1e-9);
}

TEST(Metrics, ExponentStatistics) {
  std::vector<double> data(2048, 1.0);  // Biased exponent 1023.
  const DatasetMetrics m = ComputeMetrics(data.data(), data.size());
  EXPECT_NEAR(m.exponent_avg, 1023.0, 1e-9);
  EXPECT_NEAR(m.exponent_std, 0.0, 1e-9);
}

TEST(Metrics, XorZeroBitsOnConstantData) {
  std::vector<double> data(4096, 3.25);
  const DatasetMetrics m = ComputeMetrics(data.data(), data.size());
  EXPECT_NEAR(m.xor_leading_avg, 64.0, 1e-9);
  EXPECT_NEAR(m.xor_trailing_avg, 64.0, 1e-9);
}

TEST(Metrics, XorZeroBitsOnAlternatingSign) {
  std::vector<double> data(4096);
  for (size_t i = 0; i < data.size(); ++i) data[i] = (i % 2 == 0) ? 1.0 : -1.0;
  const DatasetMetrics m = ComputeMetrics(data.data(), data.size());
  EXPECT_LT(m.xor_leading_avg, 1.0);  // Sign bit flips every step.
}

TEST(Metrics, SurrogateDatasetsReproduceTable2Shape) {
  // The headline Table 2 claims, checked on the surrogates:
  //  - City-Temp: precision 1, high per-vector success.
  //  - POI-lat: very low decimal success.
  const auto city = data::Generate(*data::FindDataset("City-Temp"), 100000);
  const auto city_m = ComputeMetrics(city.data(), city.size());
  EXPECT_GT(city_m.success_per_vector, 0.9);

  const auto poi = data::Generate(*data::FindDataset("POI-lat"), 50000);
  const auto poi_m = ComputeMetrics(poi.data(), poi.size());
  EXPECT_LT(poi_m.success_per_vector, 0.9);
  EXPECT_GT(city_m.success_per_vector, poi_m.success_per_vector);
}

TEST(Combinations, SinglePrecisionDataHasOneWinner) {
  std::mt19937_64 rng(3);
  std::vector<double> data(alp::kVectorSize * 20);
  for (auto& v : data) {
    v = static_cast<double>(static_cast<int64_t>(rng() % 100000)) / 10.0;
  }
  const CombinationAnalysis a = AnalyzeBestCombinations(data.data(), data.size());
  EXPECT_EQ(a.vectors, 20u);
  ASSERT_GE(a.histogram.size(), 1u);
  EXPECT_GT(a.CoverageOfTop(1), 0.9);
  // The winner preserves one decimal: e - f == 1.
  const auto& best = a.histogram.front().first;
  EXPECT_EQ(static_cast<int>(best.e) - static_cast<int>(best.f), 1);
}

TEST(Combinations, MixedPrecisionNeedsMoreCombinations) {
  std::mt19937_64 rng(4);
  std::vector<double> data;
  for (int block = 0; block < 20; ++block) {
    const int p = block % 4;
    const double f10 = std::pow(10.0, p);
    for (unsigned i = 0; i < alp::kVectorSize; ++i) {
      data.push_back(static_cast<double>(static_cast<int64_t>(rng() % 1000000)) / f10);
    }
  }
  const CombinationAnalysis a = AnalyzeBestCombinations(data.data(), data.size());
  EXPECT_GE(a.histogram.size(), 3u);
  EXPECT_GT(a.CoverageOfTop(5), 0.99);  // Figure 3: top 5 suffice.
}

TEST(Combinations, CoverageIsMonotone) {
  const auto data = data::Generate(*data::FindDataset("CMS/1"), alp::kVectorSize * 30);
  const CombinationAnalysis a = AnalyzeBestCombinations(data.data(), data.size());
  double prev = 0.0;
  for (size_t k = 1; k <= 6; ++k) {
    const double c = a.CoverageOfTop(k);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(a.CoverageOfTop(a.histogram.size()), 1.0, 1e-9);
}

}  // namespace
}  // namespace alp::analysis
