// X-ray / explain engine invariants (tier1). Three pillars:
//
//   1. Byte accounting is exact: for every committed golden file (v2 and
//      v3) and for freshly built fixture columns, the per-stream totals in
//      the XRayReport sum to the file size bit-for-bit, and the per-vector
//      stream fields partition each vector's extent. No estimate anywhere.
//   2. Explain is read-only and observation-independent: the report and
//      both renderings are byte-identical whether span tracing is running
//      or not, and the analyzed buffer is never modified. The same
//      assertions run in the -DALP_OBS=OFF CI job, which pins the
//      compiled-out build to identical behavior.
//   3. The trace capture exports well-formed Chrome trace_event JSON, and
//      spans attributed to one thread nest properly (any two spans on a
//      tid are disjoint or contained) under an 8-worker pool.
//
// The suite runs in both ALP_OBS builds; span-presence assertions are
// gated, everything else (including the empty-trace JSON shape) is not.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "alp/alp.h"
#include "obs/trace_buffer.h"
#include "obs/xray.h"
#include "test_fixtures.h"
#include "util/file_io.h"
#include "util/thread_pool.h"

#ifndef ALP_GOLDEN_DIR
#error "ALP_GOLDEN_DIR must point at tests/golden (set by tests/CMakeLists.txt)"
#endif

namespace alp {
namespace {

using obs::ColumnXRay;
using obs::XRayReport;
using testutil::AlpSmall;
using testutil::RdSmall;
using testutil::StripToV2;
using testutil::TwoRowgroups;

std::vector<uint8_t> LoadGolden(const std::string& name) {
  const std::string path = std::string(ALP_GOLDEN_DIR) + "/" + name;
  const auto bytes = ReadFileBytes(path);
  EXPECT_TRUE(bytes.has_value()) << "missing golden file " << path;
  return bytes.value_or(std::vector<uint8_t>{});
}

// ---------------------------------------------------------------------------
// Minimal JSON well-formedness checker (no third-party parser in the test
// tier). Accepts exactly the RFC 8259 grammar; trailing garbage fails.
// ---------------------------------------------------------------------------

class JsonScanner {
 public:
  explicit JsonScanner(const std::string& text) : s_(text) {}

  bool Parse() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Peek('"') || !String()) return false;
      SkipWs();
      if (!Peek(':')) return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(',')) { ++pos_; continue; }
      if (Peek('}')) { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek(']')) { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(',')) { ++pos_; continue; }
      if (Peek(']')) { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    ++pos_;  // '"'
    while (pos_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') { ++pos_; return true; }
      if (c < 0x20) return false;  // Raw control char: escaping bug.
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          if (pos_ + 4 >= s_.size()) return false;
          for (int i = 1; i <= 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek('-')) ++pos_;
    if (!DigitRun()) return false;
    if (Peek('.')) {
      ++pos_;
      if (!DigitRun()) return false;
    }
    if (Peek('e') || Peek('E')) {
      ++pos_;
      if (Peek('+') || Peek('-')) ++pos_;
      if (!DigitRun()) return false;
    }
    return pos_ > start;
  }

  bool DigitRun() {
    const size_t start = pos_;
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    return pos_ > start;
  }

  bool Literal(const char* word) {
    const size_t len = std::strlen(word);
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool Peek(char c) const { return pos_ < s_.size() && s_[pos_] == c; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

bool JsonParses(const std::string& text) { return JsonScanner(text).Parse(); }

// ---------------------------------------------------------------------------
// Shared accounting assertions.
// ---------------------------------------------------------------------------

/// Asserts the full accounting contract on \p report for a buffer of
/// \p size bytes: stream totals sum to the file size, every vector's
/// stream fields partition its extent, rowgroup extents tile the payload,
/// and the histograms are consistent with the per-vector records.
void CheckAccounting(const XRayReport& report, size_t size) {
  ASSERT_EQ(report.file_size, size);
  EXPECT_EQ(report.streams.Total(), report.file_size)
      << "stream byte accounting does not sum to the file size";

  // Re-derive the stream totals from the per-vector / per-rowgroup records
  // independently of Analyze's own accumulation.
  uint64_t vector_headers = 0;
  uint64_t packed = 0;
  uint64_t exceptions = 0;
  uint64_t vector_padding = 0;
  ASSERT_EQ(report.vectors.size(), report.vector_count);
  for (const auto& vm : report.vectors) {
    EXPECT_EQ(vm.header_bytes + vm.packed_bytes + vm.exception_bytes +
                  vm.padding_bytes,
              vm.byte_extent)
        << "vector " << vm.index << " streams do not partition its extent";
    EXPECT_LE(vm.bit_width, 64u) << "vector " << vm.index;
    vector_headers += vm.header_bytes;
    packed += vm.packed_bytes;
    exceptions += vm.exception_bytes;
    vector_padding += vm.padding_bytes;
  }
  EXPECT_EQ(vector_headers, report.streams.vector_headers);
  EXPECT_EQ(packed, report.streams.packed_data);
  EXPECT_EQ(exceptions, report.streams.exceptions);
  EXPECT_LE(vector_padding, report.streams.padding);

  uint64_t rowgroup_headers = 0;
  ASSERT_EQ(report.rowgroups.size(), report.rowgroup_count);
  for (const auto& rm : report.rowgroups) {
    rowgroup_headers += rm.header_bytes;
  }
  EXPECT_EQ(rowgroup_headers, report.streams.rowgroup_headers);

  // Rowgroup extents tile the payload region exactly.
  const uint64_t fixed = report.streams.column_header +
                         report.streams.rowgroup_index +
                         report.streams.checksums + report.streams.zone_map;
  uint64_t payload = 0;
  uint64_t expected_offset = fixed;
  for (const auto& rm : report.rowgroups) {
    EXPECT_EQ(rm.byte_offset, expected_offset)
        << "gap or overlap before rowgroup " << rm.index;
    expected_offset += rm.byte_extent;
    payload += rm.byte_extent;
  }
  EXPECT_EQ(fixed + payload, report.file_size);

  // Histogram mass balances the per-vector records.
  uint64_t width_mass = 0;
  for (const uint64_t count : report.bit_width_histogram) width_mass += count;
  EXPECT_EQ(width_mass, report.vector_count);
  uint64_t position_mass = 0;
  for (const uint64_t count : report.exception_position_histogram) {
    position_mass += count;
  }
  EXPECT_EQ(position_mass, report.exception_count);
  EXPECT_EQ(report.vectors_alp + report.vectors_rd, report.vector_count);
}

XRayReport MustAnalyze(const std::vector<uint8_t>& buffer) {
  StatusOr<XRayReport> report = ColumnXRay::Analyze(buffer.data(), buffer.size());
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? *report : XRayReport{};
}

// ---------------------------------------------------------------------------
// 1. Byte accounting over the committed golden files and fresh fixtures.
// ---------------------------------------------------------------------------

TEST(XRayAccounting, GoldenAlpSmallV3) {
  const auto buffer = LoadGolden("alp_small.alp");
  ASSERT_FALSE(buffer.empty());
  const XRayReport report = MustAnalyze(buffer);
  EXPECT_EQ(report.format_version, 3);
  EXPECT_EQ(report.type, "double");
  EXPECT_EQ(report.value_count, AlpSmall().values.size());
  EXPECT_GT(report.streams.checksums, 0u);  // v3 carries checksums.
  CheckAccounting(report, buffer.size());
}

TEST(XRayAccounting, GoldenAlpSmallV2) {
  const auto buffer = LoadGolden("alp_small_v2.alp");
  ASSERT_FALSE(buffer.empty());
  const XRayReport report = MustAnalyze(buffer);
  EXPECT_EQ(report.format_version, 2);
  EXPECT_EQ(report.streams.checksums, 0u);  // v2 predates checksums.
  CheckAccounting(report, buffer.size());
}

TEST(XRayAccounting, GoldenRdSmall) {
  const auto buffer = LoadGolden("rd_small.alp");
  ASSERT_FALSE(buffer.empty());
  const XRayReport report = MustAnalyze(buffer);
  EXPECT_EQ(report.vectors_rd, report.vector_count)
      << "rd_small should be an ALP_rd column throughout";
  CheckAccounting(report, buffer.size());
  for (const auto& rm : report.rowgroups) {
    EXPECT_EQ(rm.scheme, Scheme::kAlpRd);
    EXPECT_GT(rm.rd_dict_size, 0u);
  }
}

TEST(XRayAccounting, FixtureColumnsAndV2Strip) {
  const std::vector<const std::vector<uint8_t>*> buffers = {
      &AlpSmall().buffer, &RdSmall().buffer, &TwoRowgroups().buffer};
  for (const auto* buffer : buffers) {
    CheckAccounting(MustAnalyze(*buffer), buffer->size());
  }
  const std::vector<uint8_t> v2 = StripToV2(TwoRowgroups().buffer);
  const XRayReport report = MustAnalyze(v2);
  EXPECT_EQ(report.format_version, 2);
  CheckAccounting(report, v2.size());
}

TEST(XRayAccounting, EmptyColumn) {
  const std::vector<uint8_t> buffer = CompressColumn<double>(nullptr, 0);
  const XRayReport report = MustAnalyze(buffer);
  EXPECT_EQ(report.value_count, 0u);
  EXPECT_EQ(report.vector_count, 0u);
  EXPECT_EQ(report.exception_count, 0u);
  EXPECT_EQ(report.BitsPerValue(), 0.0);
  CheckAccounting(report, buffer.size());
}

TEST(XRayAccounting, FloatColumn) {
  std::vector<float> values(3 * kVectorSize + 9);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<float>(static_cast<int>(i % 4096) - 2048) / 4.0f;
  }
  const std::vector<uint8_t> buffer =
      CompressColumn(values.data(), values.size());

  // The typed entry point and the auto-detecting one agree.
  StatusOr<XRayReport> typed =
      ColumnXRay::AnalyzeAs<float>(buffer.data(), buffer.size());
  ASSERT_TRUE(typed.ok()) << typed.status().ToString();
  const XRayReport report = MustAnalyze(buffer);
  EXPECT_EQ(report.type, "float");
  EXPECT_EQ(report.value_count, values.size());
  EXPECT_EQ(typed->streams.Total(), report.streams.Total());
  CheckAccounting(report, buffer.size());

  // The double entry point must refuse a float file, not misread it.
  EXPECT_FALSE(ColumnXRay::AnalyzeAs<double>(buffer.data(), buffer.size()).ok());
}

TEST(XRayAccounting, ExceptionPositionsAreInRange) {
  const auto& buffer = AlpSmall().buffer;
  StatusOr<ColumnMetaCursor<double>> cursor =
      ColumnMetaCursor<double>::Open(buffer.data(), buffer.size());
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  uint64_t total_exceptions = 0;
  for (size_t v = 0; v < cursor->vector_count(); ++v) {
    StatusOr<VectorMeta> vm = cursor->Vector(v);
    ASSERT_TRUE(vm.ok()) << vm.status().ToString();
    std::vector<uint16_t> positions;
    ASSERT_TRUE(cursor->ReadExceptionPositions(*vm, &positions).ok());
    ASSERT_EQ(positions.size(), vm->exc_count);
    for (const uint16_t pos : positions) EXPECT_LT(pos, vm->n);
    total_exceptions += vm->exc_count;
  }
  // DecimalData seeds random-bit specials, so the fixture must actually
  // exercise the exception stream.
  EXPECT_GT(total_exceptions, 0u);
}

TEST(XRayAccounting, RejectsTruncatedAndGarbageBuffers) {
  const auto& buffer = AlpSmall().buffer;
  for (const size_t size : {size_t{0}, size_t{10}, buffer.size() - 9}) {
    EXPECT_FALSE(ColumnXRay::Analyze(buffer.data(), size).ok())
        << "accepted a " << size << "-byte prefix";
  }
  const std::vector<uint8_t> garbage(256, 0xA5);
  EXPECT_FALSE(ColumnXRay::Analyze(garbage.data(), garbage.size()).ok());
}

// ---------------------------------------------------------------------------
// 2. Rendering: valid JSON, key schema fields present, and independence
//    from the runtime trace toggle.
// ---------------------------------------------------------------------------

TEST(XRayRender, JsonIsWellFormedAndCarriesSchemaFields) {
  const XRayReport report = MustAnalyze(TwoRowgroups().buffer);
  for (const size_t top_n : {size_t{0}, size_t{1}, size_t{16}}) {
    const std::string json = ColumnXRay::ToJson(report, top_n);
    EXPECT_TRUE(JsonParses(json)) << json.substr(0, 200);
  }
  const std::string json = ColumnXRay::ToJson(report, 4);
  for (const char* key :
       {"\"alp_xray\"", "\"file_size\"", "\"value_count\"", "\"streams\"",
        "\"exceptions\"", "\"bit_width_histogram\"", "\"rowgroups\"",
        "\"outliers\"", "\"total\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_NE(json.find("\"file_size\":" +
                      std::to_string(TwoRowgroups().buffer.size())),
            std::string::npos);

  const std::string text = ColumnXRay::ToText(report, 5);
  EXPECT_NE(text.find("alp x-ray"), std::string::npos);
  EXPECT_NE(text.find("100.0%"), std::string::npos)
      << "stream table should show the accounted total at 100%";
}

TEST(XRayRender, IdenticalWhetherTracingRunsOrNot) {
  const auto& buffer = TwoRowgroups().buffer;
  std::vector<uint8_t> copy = buffer;

  const XRayReport quiet = MustAnalyze(copy);
  const std::string quiet_json = ColumnXRay::ToJson(quiet, 0);
  const std::string quiet_text = ColumnXRay::ToText(quiet, 8);

  obs::StartTracing();
  const XRayReport traced = MustAnalyze(copy);
  const std::string traced_json = ColumnXRay::ToJson(traced, 0);
  const std::string traced_text = ColumnXRay::ToText(traced, 8);
  obs::StopTracing();
  obs::ResetTrace();

  EXPECT_EQ(quiet_json, traced_json);
  EXPECT_EQ(quiet_text, traced_text);
  EXPECT_EQ(copy, buffer) << "explain must never modify the buffer";
}

// ---------------------------------------------------------------------------
// 3. Trace capture: Chrome trace_event JSON shape, per-thread nesting
//    under an 8-worker pool, overflow accounting, and the OFF-build no-op.
// ---------------------------------------------------------------------------

TEST(Trace, EmptyCaptureIsValidJson) {
  obs::ResetTrace();
  const std::string json = obs::TraceToJson();
  EXPECT_TRUE(JsonParses(json)) << json.substr(0, 200);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(Trace, EightWorkerCaptureNestsPerThread) {
  std::vector<double> values = testutil::DecimalData(7001, 4 * kRowgroupSize);
  ThreadPool pool(8);

  obs::StartTracing();
  const std::vector<uint8_t> compressed =
      CompressColumnParallel(values.data(), values.size(), {}, nullptr, &pool);
  obs::StopTracing();

  EXPECT_EQ(compressed, CompressColumn(values.data(), values.size()))
      << "tracing must not perturb the encoded bytes";

  const std::vector<obs::TraceSpan> spans = obs::CollectTraceSpans();
  const std::string json = obs::TraceToJson();
  obs::ResetTrace();

  ASSERT_TRUE(JsonParses(json)) << json.substr(0, 200);

#if ALP_OBS
  ASSERT_FALSE(spans.empty());
  // Spans from pool workers carry their worker index; the coordinating
  // thread gets a synthetic tid. With 4 rowgroups on 8 workers at least
  // two workers must have recorded something.
  std::vector<int> tids;
  for (const auto& span : spans) {
    EXPECT_FALSE(span.name.empty());
    EXPECT_LE(span.begin_cycles, span.end_cycles);
    EXPECT_TRUE((span.tid >= 0 && span.tid < 8) ||
                span.tid >= obs::kSyntheticTidBase)
        << "tid " << span.tid;
    if (std::find(tids.begin(), tids.end(), span.tid) == tids.end()) {
      tids.push_back(span.tid);
    }
  }
  EXPECT_GE(tids.size(), 3u) << "expected main + several workers";

  // Proper nesting per tid: any two spans on one thread are either
  // disjoint or one contains the other — scoped timers cannot interleave.
  for (const int tid : tids) {
    std::vector<const obs::TraceSpan*> own;
    for (const auto& span : spans) {
      if (span.tid == tid) own.push_back(&span);
    }
    for (size_t i = 0; i < own.size(); ++i) {
      for (size_t j = i + 1; j < own.size(); ++j) {
        const auto& a = *own[i];
        const auto& b = *own[j];
        const bool disjoint = a.end_cycles <= b.begin_cycles ||
                              b.end_cycles <= a.begin_cycles;
        const bool a_in_b = b.begin_cycles <= a.begin_cycles &&
                            a.end_cycles <= b.end_cycles;
        const bool b_in_a = a.begin_cycles <= b.begin_cycles &&
                            b.end_cycles <= a.end_cycles;
        EXPECT_TRUE(disjoint || a_in_b || b_in_a)
            << "spans " << a.name << " and " << b.name
            << " partially overlap on tid " << tid;
      }
    }
  }

  // The JSON carries one complete event per span plus thread metadata.
  size_t complete_events = 0;
  for (size_t at = json.find("\"ph\":\"X\""); at != std::string::npos;
       at = json.find("\"ph\":\"X\"", at + 1)) {
    ++complete_events;
  }
  EXPECT_EQ(complete_events, spans.size());
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
#else
  EXPECT_TRUE(spans.empty()) << "OFF build must not record spans";
#endif
}

TEST(Trace, RingOverflowCountsDroppedSpans) {
  obs::StartTracing();
  const size_t pushed = obs::kTraceRingCapacity + 100;
  for (size_t i = 0; i < pushed; ++i) {
    obs::TraceRecordSpan("test.overflow", i, i + 1, 1);
  }
  obs::StopTracing();
  const std::vector<obs::TraceSpan> spans = obs::CollectTraceSpans();
  const uint64_t dropped = obs::TraceDroppedSpans();
  obs::ResetTrace();
#if ALP_OBS
  EXPECT_EQ(spans.size(), obs::kTraceRingCapacity);
  EXPECT_EQ(dropped, pushed - obs::kTraceRingCapacity);
#else
  EXPECT_TRUE(spans.empty());
  EXPECT_EQ(dropped, 0u);
#endif
}

TEST(Trace, DisabledByDefaultAndStopsRecording) {
  obs::ResetTrace();
  EXPECT_FALSE(obs::TraceEnabled());
  obs::TraceRecordSpan("test.disabled", 1, 2, 1);
  EXPECT_TRUE(obs::CollectTraceSpans().empty())
      << "spans must not record while tracing is off";
#if ALP_OBS
  obs::StartTracing();
  EXPECT_TRUE(obs::TraceEnabled());
  obs::StopTracing();
  EXPECT_FALSE(obs::TraceEnabled());
  obs::ResetTrace();
#else
  obs::StartTracing();
  EXPECT_FALSE(obs::TraceEnabled()) << "OFF build can never enable tracing";
  obs::StopTracing();
#endif
}

}  // namespace
}  // namespace alp
