// Observability layer tests: registry semantics (find-or-create handles,
// sorted snapshots), histogram bucket math, the runtime enable gate, exact
// merge-on-snapshot under concurrent sharded writers (run under TSan in
// CI), and the core contract that telemetry never changes encoded bytes.
//
// The registry is process-global, so every test uses its own metric names
// ("test.<suite>.*") and restores the enabled flag it found.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "alp/alp.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "test_fixtures.h"
#include "util/thread_pool.h"

namespace alp::obs {
namespace {

// Turns recording on for the duration of a test and restores the previous
// state afterwards, so suites (and the golden tests in the same ctest run)
// never see each other's toggle.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = Enabled();
    SetEnabled(true);
  }
  void TearDown() override { SetEnabled(was_enabled_); }

 private:
  bool was_enabled_ = false;
};

TEST_F(ObsTest, CounterAddsAndResets) {
  Counter& c = MetricRegistry::Global().GetCounter("test.counter.basic");
  const uint64_t before = c.Total();
  c.Add(5);
  c.Increment();
  EXPECT_EQ(c.Total(), before + 6);
  c.Reset();
  EXPECT_EQ(c.Total(), 0u);
}

TEST_F(ObsTest, RegistryReturnsSameHandleForSameName) {
  MetricRegistry& reg = MetricRegistry::Global();
  EXPECT_EQ(&reg.GetCounter("test.handle.counter"),
            &reg.GetCounter("test.handle.counter"));
  EXPECT_EQ(&reg.GetGauge("test.handle.gauge"), &reg.GetGauge("test.handle.gauge"));
  EXPECT_EQ(&reg.GetHistogram("test.handle.histogram", {1, 2}, "u"),
            &reg.GetHistogram("test.handle.histogram", {9, 99}, "ignored"));
  EXPECT_EQ(&reg.GetStage("test.handle.stage"), &reg.GetStage("test.handle.stage"));
  // Distinct names are distinct objects.
  EXPECT_NE(&reg.GetCounter("test.handle.counter"),
            &reg.GetCounter("test.handle.counter2"));
}

TEST_F(ObsTest, DisabledRecordingIsANoOp) {
  MetricRegistry& reg = MetricRegistry::Global();
  Counter& c = reg.GetCounter("test.disabled.counter");
  Gauge& g = reg.GetGauge("test.disabled.gauge");
  Histogram& h = reg.GetHistogram("test.disabled.histogram", {10}, "u");
  c.Reset();
  g.Reset();
  h.Reset();

  SetEnabled(false);
  c.Add(100);
  g.Set(42);
  g.UpdateMax(42);
  h.Record(3);
  EXPECT_EQ(c.Total(), 0u);
  EXPECT_EQ(g.Value(), 0);
  EXPECT_EQ(h.TotalCount(), 0u);

  SetEnabled(true);
  c.Add(1);
  g.Set(7);
  h.Record(3);
  EXPECT_EQ(c.Total(), 1u);
  EXPECT_EQ(g.Value(), 7);
  EXPECT_EQ(h.TotalCount(), 1u);
}

TEST_F(ObsTest, GaugeSetAndUpdateMax) {
  Gauge& g = MetricRegistry::Global().GetGauge("test.gauge.maxima");
  g.Reset();
  g.Set(10);
  EXPECT_EQ(g.Value(), 10);
  g.UpdateMax(5);  // Smaller: no change.
  EXPECT_EQ(g.Value(), 10);
  g.UpdateMax(25);
  EXPECT_EQ(g.Value(), 25);
  g.Set(3);  // Set always overwrites.
  EXPECT_EQ(g.Value(), 3);
}

TEST_F(ObsTest, HistogramBucketBoundaries) {
  // Bucket i counts values <= bounds[i]; above the last bound -> overflow.
  Histogram& h =
      MetricRegistry::Global().GetHistogram("test.histogram.bounds", {10, 20}, "u");
  h.Reset();
  h.Record(0);    // bucket 0
  h.Record(10);   // bucket 0 (inclusive upper bound)
  h.Record(11);   // bucket 1
  h.Record(20);   // bucket 1
  h.Record(21);   // overflow
  h.Record(1000); // overflow

  const std::vector<uint64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(h.TotalCount(), 6u);
  EXPECT_EQ(h.TotalSum(), 0u + 10 + 11 + 20 + 21 + 1000);

  h.Reset();
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.TotalSum(), 0u);
  for (uint64_t c : h.BucketCounts()) EXPECT_EQ(c, 0u);
}

TEST_F(ObsTest, ScopedTimerFeedsStageStats) {
  StageStats& stage = MetricRegistry::Global().GetStage("test.stage.timer");
  stage.Reset();
  {
    ScopedTimer t(stage, "test.stage.timer", 128);
  }
  {
    ScopedTimer t(stage, "test.stage.timer", 0);
    t.SetItems(512);
  }
  EXPECT_EQ(stage.Calls(), 2u);
  EXPECT_EQ(stage.Items(), 640u);
  EXPECT_GT(stage.Cycles(), 0u);
}

TEST_F(ObsTest, ScopedTimerArmedAtConstructionOnly) {
  // A timer built while recording is disabled must not record, even if
  // recording is enabled before it is destroyed.
  StageStats& stage = MetricRegistry::Global().GetStage("test.stage.arming");
  stage.Reset();
  SetEnabled(false);
  {
    ScopedTimer t(stage, "test.stage.arming", 7);
    SetEnabled(true);
  }
  EXPECT_EQ(stage.Calls(), 0u);
}

TEST_F(ObsTest, SnapshotContainsSortedNames) {
  MetricRegistry& reg = MetricRegistry::Global();
  reg.GetCounter("test.snapshot.zz").Add(2);
  reg.GetCounter("test.snapshot.aa").Add(1);
  reg.GetHistogram("test.snapshot.h", {4}, "things").Record(3);
  reg.GetStage("test.snapshot.stage").Record(100, 10);

  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_TRUE(snap.enabled);

  // Globally sorted by name.
  for (size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }

  int64_t aa = -1, zz = -1;
  for (const auto& c : snap.counters) {
    if (c.name == "test.snapshot.aa") aa = static_cast<int64_t>(c.value);
    if (c.name == "test.snapshot.zz") zz = static_cast<int64_t>(c.value);
  }
  EXPECT_EQ(aa, 1);
  EXPECT_EQ(zz, 2);

  bool found_histogram = false;
  for (const auto& h : snap.histograms) {
    if (h.name != "test.snapshot.h") continue;
    found_histogram = true;
    EXPECT_EQ(h.unit, "things");
    ASSERT_EQ(h.bounds.size(), 1u);
    ASSERT_EQ(h.counts.size(), 2u);
    EXPECT_EQ(h.count, 1u);
    EXPECT_EQ(h.sum, 3u);
    EXPECT_DOUBLE_EQ(h.Mean(), 3.0);
  }
  EXPECT_TRUE(found_histogram);

  bool found_stage = false;
  for (const auto& s : snap.stages) {
    if (s.name != "test.snapshot.stage") continue;
    found_stage = true;
    EXPECT_EQ(s.calls, 1u);
    EXPECT_DOUBLE_EQ(s.CyclesPerCall(), 100.0);
    EXPECT_DOUBLE_EQ(s.CyclesPerItem(), 10.0);
  }
  EXPECT_TRUE(found_stage);
}

// The MergeFrom-style exactness contract: sharded relaxed writers merged on
// snapshot lose nothing. 8 writers hammer one counter and one histogram;
// totals must be exact. This is the test TSan watches in CI.
TEST_F(ObsTest, MergeOnSnapshotIsExactUnderConcurrentWriters) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50'000;

  MetricRegistry& reg = MetricRegistry::Global();
  Counter& c = reg.GetCounter("test.concurrent.counter");
  Histogram& h = reg.GetHistogram("test.concurrent.histogram", {2, 5, 8}, "u");
  c.Reset();
  h.Reset();

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&c, &h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        c.Add(1);
        h.Record((static_cast<uint64_t>(t) + i) % 10);
      }
    });
  }
  // Snapshots taken mid-flight must be readable (not torn / crashing);
  // values are monotonically growing but otherwise unasserted here.
  for (int i = 0; i < 8; ++i) {
    const MetricsSnapshot mid = reg.Snapshot();
    EXPECT_LE(mid.counters.size(), reg.Snapshot().counters.size());
  }
  for (auto& w : writers) w.join();

  constexpr uint64_t kTotal = kThreads * kPerThread;
  EXPECT_EQ(c.Total(), kTotal);
  EXPECT_EQ(h.TotalCount(), kTotal);
  // Each thread records (t + i) % 10 for i in [0, kPerThread); kPerThread is
  // a multiple of 10, so every residue appears exactly kPerThread / 10 times
  // regardless of t: sum = kTotal / 10 * (0 + 1 + ... + 9).
  EXPECT_EQ(h.TotalSum(), kTotal / 10 * 45);
  const std::vector<uint64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], kTotal / 10 * 3);  // 0,1,2
  EXPECT_EQ(counts[1], kTotal / 10 * 3);  // 3,4,5
  EXPECT_EQ(counts[2], kTotal / 10 * 3);  // 6,7,8
  EXPECT_EQ(counts[3], kTotal / 10 * 1);  // 9
}

TEST_F(ObsTest, ResetZeroesEverythingButKeepsRegistrations) {
  MetricRegistry& reg = MetricRegistry::Global();
  Counter& c = reg.GetCounter("test.reset.counter");
  c.Add(9);
  reg.Reset();
  EXPECT_EQ(c.Total(), 0u);
  EXPECT_EQ(&c, &reg.GetCounter("test.reset.counter"));
}

TEST_F(ObsTest, SinkEmitsParsableShapes) {
  MetricRegistry& reg = MetricRegistry::Global();
  reg.GetCounter("test.sink.counter\"quoted\"").Add(3);
  reg.GetHistogram("test.sink.histogram", {1, 2}, "bits").Record(2);
  const MetricsSnapshot snap = reg.Snapshot();

  const std::string json = TraceSink::ToJson(snap);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("test.sink.counter\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  // Balanced braces is a cheap well-formedness proxy without a JSON parser.
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (in_string) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_string = false;
    } else if (ch == '"') {
      in_string = true;
    } else if (ch == '{') {
      ++depth;
    } else if (ch == '}') {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);

  const std::string text = TraceSink::ToText(snap);
  EXPECT_NE(text.find("test.sink.histogram"), std::string::npos);
}

TEST_F(ObsTest, SinkTextRendersEverySection) {
  MetricRegistry& reg = MetricRegistry::Global();
  reg.GetCounter("test.text.counter").Add(41);
  reg.GetGauge("test.text.gauge").Set(17);
  Histogram& h = reg.GetHistogram("test.text.histogram", {4, 8}, "bits");
  h.Record(3);
  h.Record(100);  // Overflow bucket: exercises the "> bound" row.
  StageStats& stage = reg.GetStage("test.text.stage");
  stage.Record(/*cycles=*/1000, /*items=*/250);
  const MetricsSnapshot snap = reg.Snapshot();

  const std::string text = TraceSink::ToText(snap);
  EXPECT_NE(text.find("== metrics (enabled) =="), std::string::npos);
  EXPECT_NE(text.find("counters:"), std::string::npos);
  EXPECT_NE(text.find("test.text.counter"), std::string::npos);
  EXPECT_NE(text.find("41"), std::string::npos);
  EXPECT_NE(text.find("gauges:"), std::string::npos);
  EXPECT_NE(text.find("test.text.gauge"), std::string::npos);
  EXPECT_NE(text.find("histogram test.text.histogram (bits)"), std::string::npos);
  EXPECT_NE(text.find("count=2"), std::string::npos);
  EXPECT_NE(text.find("<= 4"), std::string::npos) << "bucket row missing";
  EXPECT_NE(text.find("> 8"), std::string::npos) << "overflow row missing";
  EXPECT_NE(text.find("(50"), std::string::npos) << "bucket percentage missing";
  EXPECT_NE(text.find("stages:"), std::string::npos);
  EXPECT_NE(text.find("test.text.stage"), std::string::npos);

  // A disabled snapshot renders as such (rendering stays a pure function
  // of the snapshot, not of the live gate).
  MetricsSnapshot disabled = snap;
  disabled.enabled = false;
  EXPECT_NE(TraceSink::ToText(disabled).find("== metrics (disabled) =="),
            std::string::npos);
}

TEST_F(ObsTest, EmitMatchesTheDirectRenderers) {
  MetricRegistry& reg = MetricRegistry::Global();
  reg.GetCounter("test.emit.counter").Add(5);
  const MetricsSnapshot snap = reg.Snapshot();

  std::ostringstream as_json;
  TraceSink::Emit(snap, /*json=*/true, as_json);
  EXPECT_EQ(as_json.str(), TraceSink::ToJson(snap) + "\n");

  std::ostringstream as_text;
  TraceSink::Emit(snap, /*json=*/false, as_text);
  EXPECT_EQ(as_text.str(), TraceSink::ToText(snap));
  EXPECT_NE(as_json.str(), as_text.str());
}

// JSON numbers must parse back to the exact double that was measured:
// bench_diff compares report values bit-for-bit against baselines, so a
// 6-significant-digit rendering would make equal measurements "regress".
TEST(JsonDoubleTest, RoundTripsBitExactWhereSixDigitsLoseBits) {
  // 0.1 + 0.2 needs all 17 significant digits: a %.6g rendering ("0.3")
  // parses back to a *different* binary64. This is the regression the
  // %.17g path in JsonDouble exists to prevent.
  const double awkward = 0.1 + 0.2;  // 0.30000000000000004
  char six[64];
  std::snprintf(six, sizeof(six), "%.6g", awkward);
  ASSERT_NE(std::strtod(six, nullptr), awkward);

  const double cases[] = {awkward,
                          1.0 / 3.0,
                          2.0 / 3.0,
                          7.23,
                          -0.0,
                          0.0,
                          1e-300,
                          123456789.123456789,
                          std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::denorm_min()};
  for (double v : cases) {
    const std::string text = JsonDouble(v);
    const double back = std::strtod(text.c_str(), nullptr);
    EXPECT_EQ(std::memcmp(&back, &v, sizeof v), 0)
        << text << " reparsed to a different bit pattern";
  }
  // Non-finite values are not valid JSON number tokens; they render as 0.
  EXPECT_EQ(JsonDouble(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(JsonDouble(std::nan("")), "0");
}

// ---------------------------------------------------------------------------
// Prometheus text exposition.

TEST(PrometheusExportTest, RendersCountersGaugesAndLabeledFamilies) {
  MetricsSnapshot snap;
  snap.counters.push_back({"io.cache.hit", 42});
  snap.counters.push_back({"io.cache.hit{column=\"temps\"}", 7});
  snap.gauges.push_back({"server.queue_depth{class=\"scan\"}", 13});
  const std::string text = PrometheusText(snap);

  EXPECT_NE(text.find("# TYPE alp_io_cache_hit_total counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\nalp_io_cache_hit_total 42\n"), std::string::npos)
      << text;
  // The labeled variant joins the same family — no second TYPE line.
  EXPECT_NE(text.find("alp_io_cache_hit_total{column=\"temps\"} 7\n"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.find("# TYPE alp_io_cache_hit_total counter",
                      text.find("# TYPE alp_io_cache_hit_total counter") + 1),
            std::string::npos)
      << "duplicate TYPE line:\n" << text;
  EXPECT_NE(text.find("# TYPE alp_server_queue_depth gauge\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("alp_server_queue_depth{class=\"scan\"} 13\n"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.back(), '\n');
}

TEST(PrometheusExportTest, HistogramBucketsAreCumulativeWithInfEqualCount) {
  MetricsSnapshot snap;
  MetricsSnapshot::HistogramSample h;
  h.name = "server.latency_us{class=\"lookup\",tenant=\"t0\"}";
  h.unit = "us";
  h.bounds = {10, 100, 1000};
  h.counts = {3, 2, 1, 4};  // Per-bucket, overflow last.
  h.count = 10;
  h.sum = 12345;
  snap.histograms.push_back(std::move(h));
  const std::string text = PrometheusText(snap);

  const std::string labels = "class=\"lookup\",tenant=\"t0\"";
  EXPECT_NE(text.find("# TYPE alp_server_latency_us histogram\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("alp_server_latency_us_bucket{" + labels +
                      ",le=\"10\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("alp_server_latency_us_bucket{" + labels +
                      ",le=\"100\"} 5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("alp_server_latency_us_bucket{" + labels +
                      ",le=\"1000\"} 6\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("alp_server_latency_us_bucket{" + labels +
                      ",le=\"+Inf\"} 10\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("alp_server_latency_us_sum{" + labels + "} 12345\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("alp_server_latency_us_count{" + labels + "} 10\n"),
            std::string::npos)
      << text;
}

TEST_F(ObsTest, PrometheusTextRoundTripsThroughGlobalRegistry) {
  MetricRegistry& registry = MetricRegistry::Global();
  registry.GetCounter("test.prom.events").Add(5);
  registry
      .GetCounter(LabeledName("test.prom.events", {{"tenant", "acme"}}))
      .Add(2);
  const std::string text = PrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("alp_test_prom_events_total"), std::string::npos);
  EXPECT_NE(text.find("alp_test_prom_events_total{tenant=\"acme\"}"),
            std::string::npos);
  // Registry names always sanitize into the Prometheus charset: every line
  // is `name{labels} value` or a comment, nothing else.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') continue;
    const char c = line[0];
    EXPECT_TRUE((c >= 'a' && c <= 'z') || c == '_') << line;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
  }
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab\rret"), "line\\nbreak\\ttab\\rret");
  EXPECT_EQ(JsonEscape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
  EXPECT_EQ(JsonQuote("say \"hi\""), "\"say \\\"hi\\\"\"");
  // UTF-8 multibyte sequences pass through untouched.
  EXPECT_EQ(JsonEscape("µs"), "µs");
}

// The core observability contract: recording telemetry never changes the
// encoded bytes, serial or parallel, at any worker count. (The disabled
// ALP_OBS=OFF build is additionally pinned against the golden files by
// test_golden in the obs-off CI job.)
TEST_F(ObsTest, TelemetryNeverChangesEncodedBytes) {
  const std::vector<double>& values = testutil::TwoRowgroups().values;

  SetEnabled(false);
  const std::vector<uint8_t> quiet =
      CompressColumn(values.data(), values.size());

  SetEnabled(true);
  MetricRegistry::Global().Reset();
  const std::vector<uint8_t> measured =
      CompressColumn(values.data(), values.size());
  EXPECT_EQ(quiet, measured);

  ThreadPool pool(4);
  const std::vector<uint8_t> measured_parallel =
      CompressColumnParallel(values.data(), values.size(), {}, nullptr, &pool);
  EXPECT_EQ(quiet, measured_parallel);

#if ALP_OBS
  // The instrumented build must actually have recorded pipeline activity.
  const MetricsSnapshot snap = MetricRegistry::Global().Snapshot();
  bool saw_rowgroup_stage = false;
  for (const auto& s : snap.stages) {
    if (s.name == "compress.rowgroup") saw_rowgroup_stage = s.calls > 0;
  }
  EXPECT_TRUE(saw_rowgroup_stage);
#endif
}

// Compiled-out builds must still satisfy the API (no-op) so callers need no
// conditionals; this also keeps the OFF configuration compiling the test.
TEST_F(ObsTest, SpanMacroCompilesInBothConfigurations) {
  StageStats& stage = MetricRegistry::Global().GetStage("test.macro.stage");
  stage.Reset();
  {
    ALP_OBS_SPAN(span, "test.macro.span", 16);
    ALP_OBS_ONLY(MetricRegistry::Global().GetCounter("test.macro.counter").Add(1));
  }
#if ALP_OBS
  bool found = false;
  for (const auto& s : MetricRegistry::Global().Snapshot().stages) {
    if (s.name == "test.macro.span" && s.calls == 1 && s.items == 16) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(MetricRegistry::Global().GetCounter("test.macro.counter").Total(), 1u);
#else
  // Nothing recorded, nothing registered: the macros expand to nothing.
  for (const auto& s : MetricRegistry::Global().Snapshot().stages) {
    EXPECT_NE(s.name, "test.macro.span");
  }
#endif
}

// ---------------------------------------------------------------------------
// Hardware counters (obs/perf_counters.h). Nothing here requires a working
// PMU: the subsystem's core contract is that unavailability is data, not an
// error, so every assertion holds on bare metal, in counterless VMs, under a
// hardened perf_event_paranoid, and in ALP_OBS=OFF builds alike.

TEST(PerfCountersTest, ProbeIsStableCachedAndNeverFatal) {
  const PerfProbeResult& probe = PerfProbe();
  // One probe per process: every call returns the same cached verdict.
  EXPECT_EQ(&probe, &PerfProbe());

  const std::string token = PerfAvailabilityName(probe.availability);
  const char* const kTokens[] = {"available", "compiled-out",
                                 "unsupported-platform", "forbidden",
                                 "no-hardware"};
  bool known = false;
  for (const char* t : kTokens) known = known || token == t;
  EXPECT_TRUE(known) << "unknown availability token: " << token;
  EXPECT_FALSE(probe.detail.empty());
  EXPECT_EQ(probe.available(),
            probe.availability == PerfAvailability::kAvailable);
  EXPECT_EQ(PerfAvailable(), probe.available());
#if !ALP_OBS
  EXPECT_EQ(probe.availability, PerfAvailability::kCompiledOut);
#endif
}

TEST(PerfCountersTest, ReadCurrentMatchesProbeVerdict) {
  PerfSample sample;
  const bool ok = PerfReadCurrent(&sample);
  // Reads succeed exactly when the probe said counters are usable, and a
  // failed read leaves the sample invalid so callers cannot consume garbage.
  EXPECT_EQ(ok, PerfAvailable());
  EXPECT_EQ(sample.valid, ok);
  if (ok) {
    PerfSample later;
    ASSERT_TRUE(PerfReadCurrent(&later));
    // Cumulative readings of one thread's group never run backwards.
    EXPECT_GE(later.time_enabled, sample.time_enabled);
    EXPECT_GE(later.cycles, sample.cycles);
  }
}

TEST(PerfCountersTest, DeltaAppliesMultiplexScaling) {
  PerfSample begin;
  begin.valid = true;
  begin.time_enabled = 1000;
  begin.time_running = 1000;
  begin.cycles = 100;
  begin.instructions = 200;
  begin.cache_references = 50;
  begin.cache_misses = 10;
  begin.branch_misses = 4;
  PerfSample end = begin;
  end.time_enabled = 1200;  // Enabled for 200 ns...
  end.time_running = 1100;  // ...on the PMU for 100: counts ran at half
  end.cycles = 600;         // coverage, so raw deltas are doubled.
  end.instructions = 1200;
  end.cache_references = 80;
  end.cache_misses = 25;
  end.branch_misses = 9;

  const PerfSample delta = PerfDelta(begin, end);
  ASSERT_TRUE(delta.valid);
  EXPECT_EQ(delta.time_enabled, 200u);
  EXPECT_EQ(delta.time_running, 100u);
  EXPECT_DOUBLE_EQ(delta.Scale(), 2.0);
  EXPECT_EQ(delta.cycles, 1000u);        // (600 - 100) * 2
  EXPECT_EQ(delta.instructions, 2000u);  // (1200 - 200) * 2
  EXPECT_EQ(delta.cache_references, 60u);
  EXPECT_EQ(delta.cache_misses, 30u);
  EXPECT_EQ(delta.branch_misses, 10u);
  EXPECT_DOUBLE_EQ(delta.Ipc(), 2.0);
  EXPECT_DOUBLE_EQ(delta.CacheMissRate(), 0.5);
}

TEST(PerfCountersTest, DeltaRejectsInvalidAndBackwardsEndpoints) {
  PerfSample valid;
  valid.valid = true;
  valid.time_enabled = 100;
  valid.time_running = 100;
  valid.cycles = 10;
  PerfSample invalid;  // Default-constructed: valid == false.

  EXPECT_FALSE(PerfDelta(invalid, valid).valid);
  EXPECT_FALSE(PerfDelta(valid, invalid).valid);

  // Reversed epochs (a reopened group restarts its clocks): invalid.
  PerfSample earlier = valid;
  earlier.time_enabled = 50;
  EXPECT_FALSE(PerfDelta(valid, earlier).valid);

  // An interval during which the group never owned the PMU has nothing to
  // scale from: invalid, and the caller keeps its rdtsc numbers.
  EXPECT_FALSE(PerfDelta(valid, valid).valid);
}

TEST(PerfCountersTest, PerfScopeHonorsTheSpanGate) {
  const bool was = PerfSpansEnabled();

  SetPerfSpansEnabled(false);
  PerfScope closed;
  closed.Arm();
  EXPECT_FALSE(closed.armed());
  EXPECT_FALSE(closed.Finish().valid);

  SetPerfSpansEnabled(true);
  PerfScope open;
  open.Arm();
  // Arms exactly when counters exist; Finish never fabricates a delta.
  EXPECT_EQ(open.armed(), PerfAvailable());
  const PerfSample delta = open.Finish();
  EXPECT_FALSE(open.armed());  // Single-shot.
  if (!PerfAvailable()) EXPECT_FALSE(delta.valid);

  SetPerfSpansEnabled(was);
}

TEST_F(ObsTest, StageRecordPerfFlowsToSnapshotAndSink) {
  StageStats& stage = MetricRegistry::Global().GetStage("test.perf.stage");
  stage.Reset();
  stage.Record(/*cycles=*/4000, /*items=*/1024);
  stage.RecordPerf(/*cycles=*/1000, /*instructions=*/2000,
                   /*cache_references=*/300, /*cache_misses=*/30,
                   /*branch_misses=*/10, /*items=*/1024);

  bool found = false;
  for (const auto& s : MetricRegistry::Global().Snapshot().stages) {
    if (s.name != "test.perf.stage") continue;
    found = true;
    EXPECT_EQ(s.perf_calls, 1u);
    EXPECT_EQ(s.perf_cycles, 1000u);
    EXPECT_EQ(s.perf_items, 1024u);
    EXPECT_DOUBLE_EQ(s.Ipc(), 2.0);
    EXPECT_DOUBLE_EQ(s.CacheMissesPerItem(), 30.0 / 1024.0);
    EXPECT_DOUBLE_EQ(s.BranchMissesPerItem(), 10.0 / 1024.0);
    EXPECT_DOUBLE_EQ(s.CacheMissRate(), 0.1);

    MetricsSnapshot one;
    one.enabled = true;
    one.stages.push_back(s);
    const std::string json = TraceSink::ToJson(one);
    EXPECT_NE(json.find("\"perf\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"ipc\":"), std::string::npos) << json;
    const std::string text = TraceSink::ToText(one);
    EXPECT_NE(text.find("ipc="), std::string::npos) << text;
    EXPECT_NE(text.find("cmiss/item="), std::string::npos) << text;
  }
  EXPECT_TRUE(found);

  // A stage no perf-armed span ever hit renders without the perf block, so
  // rdtsc-only hosts see exactly the pre-counter output.
  StageStats& plain = MetricRegistry::Global().GetStage("test.perf.plain");
  plain.Reset();
  plain.Record(100, 10);
  for (const auto& s : MetricRegistry::Global().Snapshot().stages) {
    if (s.name != "test.perf.plain") continue;
    MetricsSnapshot one;
    one.enabled = true;
    one.stages.push_back(s);
    EXPECT_EQ(TraceSink::ToJson(one).find("\"ipc\":"), std::string::npos);
    EXPECT_EQ(TraceSink::ToText(one).find("ipc="), std::string::npos);
  }
}

TEST_F(ObsTest, ObsHealthCountersBypassTheRuntimeGate) {
  RegisterObsHealthMetrics();
  MetricRegistry& reg = MetricRegistry::Global();
  Counter& trace_dropped = reg.GetCounter("obs.trace.dropped");
  Counter& recorder_dropped = reg.GetCounter("obs.recorder.dropped");
  const uint64_t t0 = trace_dropped.Total();
  const uint64_t r0 = recorder_dropped.Total();

  // Loss accounting must survive a closed gate: a process that toggles
  // recording still needs to know telemetry was dropped while it was off.
  SetEnabled(false);
  trace_dropped.AddAlways(2);
  recorder_dropped.AddAlways(1);
  SetEnabled(true);
  EXPECT_EQ(trace_dropped.Total(), t0 + 2);
  EXPECT_EQ(recorder_dropped.Total(), r0 + 1);

  // Registration makes both visible to `alp stats` even at zero.
  bool saw_trace = false, saw_recorder = false;
  for (const auto& c : reg.Snapshot().counters) {
    if (c.name == "obs.trace.dropped") saw_trace = true;
    if (c.name == "obs.recorder.dropped") saw_recorder = true;
  }
  EXPECT_TRUE(saw_trace);
  EXPECT_TRUE(saw_recorder);
}

TEST(FlightRecorderPerfTest, DumpCarriesAggregatedRates) {
  FlightRecorder recorder;
  recorder.Reset(/*trace_id=*/0x1234, "lookup", "t0");

  PerfSample delta;
  delta.valid = true;
  delta.time_enabled = 100;
  delta.time_running = 100;
  delta.cycles = 1000;
  delta.instructions = 2500;
  delta.cache_references = 100;
  delta.cache_misses = 25;
  delta.branch_misses = 7;
  recorder.AddPerf(delta);

  PerfSample ignored;  // Invalid deltas must not count as samples.
  recorder.AddPerf(ignored);
  EXPECT_EQ(recorder.PerfSamples(), 1u);

  recorder.SetOutcome(Status::Ok(), /*queue_ns=*/1000, /*exec_ns=*/2000);
  const std::string json = recorder.ToJson();
  EXPECT_NE(json.find("\"perf\":{\"samples\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ipc\":2.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cache_miss_rate\":0.25"), std::string::npos) << json;

  // A request that never saw a valid delta dumps no perf object at all.
  recorder.Reset(0x5678, "lookup", "t0");
  EXPECT_EQ(recorder.PerfSamples(), 0u);
  EXPECT_EQ(recorder.ToJson().find("\"perf\""), std::string::npos);
}

TEST(PrometheusExportTest, StagePerfFamiliesAppearOnlyWhenMeasured) {
  MetricsSnapshot snap;
  MetricsSnapshot::StageSample covered;
  covered.name = "decode.vector{tier=\"avx2\"}";
  covered.calls = 4;
  covered.cycles = 400;
  covered.items = 4096;
  covered.perf_calls = 2;
  covered.perf_cycles = 200;
  covered.perf_instructions = 500;
  covered.perf_cache_references = 64;
  covered.perf_cache_misses = 8;
  covered.perf_branch_misses = 3;
  covered.perf_items = 2048;
  MetricsSnapshot::StageSample plain;
  plain.name = "decode.vector{tier=\"scalar\"}";
  plain.calls = 1;
  plain.cycles = 100;
  plain.items = 1024;
  snap.stages.push_back(covered);
  snap.stages.push_back(plain);

  const std::string text = PrometheusText(snap);
  EXPECT_NE(
      text.find("alp_decode_vector_instructions_total{tier=\"avx2\"} 500\n"),
      std::string::npos)
      << text;
  EXPECT_NE(
      text.find("alp_decode_vector_cache_misses_total{tier=\"avx2\"} 8\n"),
      std::string::npos)
      << text;
  EXPECT_NE(
      text.find("alp_decode_vector_perf_items_total{tier=\"avx2\"} 2048\n"),
      std::string::npos)
      << text;
  // The uncovered tier contributes no counter families...
  EXPECT_EQ(text.find("_instructions_total{tier=\"scalar\"}"),
            std::string::npos)
      << text;
  // ...but keeps its rdtsc families untouched.
  EXPECT_NE(text.find("alp_decode_vector_cycles_total{tier=\"scalar\"} 100\n"),
            std::string::npos)
      << text;
}

// ---------------------------------------------------------------------------
// Exporter label-value escaping: names registered directly (bypassing
// LabeledName) may carry raw `\`, `"` or newline characters; the exposition
// must escape them so one hostile value cannot break a sample line or
// smuggle a second one.

TEST(PrometheusExportTest, EscapesHostileRawLabelValues) {
  MetricsSnapshot snap;
  snap.counters.push_back(
      {"evil.raw{path=\"C:\\temp\",note=\"say \"hi\"\nbye\"}", 1});
  const std::string text = PrometheusText(snap);
  EXPECT_NE(text.find("alp_evil_raw_total{path=\"C:\\\\temp\","
                      "note=\"say \\\"hi\\\"\\nbye\"} 1\n"),
            std::string::npos)
      << text;
  // No raw newline survives inside any sample line.
  EXPECT_EQ(text.find("\nbye"), std::string::npos) << text;
}

TEST(PrometheusExportTest, LabeledNameEscapesSurviveExportUnchanged) {
  // LabeledName escapes at registration time; the exporter must recognize
  // already-escaped values and not double-escape them.
  const std::string name =
      LabeledName("io.file", {{"path", "C:\\temp\nx"}, {"q", "say \"hi\""}});
  MetricsSnapshot snap;
  snap.counters.push_back({name, 3});
  const std::string text = PrometheusText(snap);
  EXPECT_NE(text.find("path=\"C:\\\\temp\\nx\""), std::string::npos) << text;
  EXPECT_NE(text.find("q=\"say \\\"hi\\\"\""), std::string::npos) << text;
}

#ifdef ALP_TOOLS_DIR

bool HavePython3() {
  return std::system("python3 -c pass >/dev/null 2>&1") == 0;
}

/// Writes \p text to a temp file and runs tools/validate_prometheus.py on
/// it. Returns the linter's exit status (0 = clean), or -1 on setup failure.
int RunPromLinter(const std::string& text, const std::string& tag) {
  const std::string path = ::testing::TempDir() + "test_obs_" + tag + ".prom";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return -1;
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  const std::string cmd = std::string("python3 \"") + ALP_TOOLS_DIR +
                          "/validate_prometheus.py\" \"" + path +
                          "\" >/dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
  std::remove(path.c_str());
  return rc;
}

// The real gate for the escaping rules: exporter output with hostile label
// values, already-escaped LabeledName values, and labeled/unlabeled variants
// of one family must all pass the repo's own Prometheus linter — and the
// linter must reject the raw-backslash shape the exporter promises never to
// emit (so the test would catch a regression on either side).
TEST(PrometheusExportTest, ExporterOutputRoundTripsThroughTheLinter) {
  if (!HavePython3()) GTEST_SKIP() << "python3 not on PATH";

  MetricsSnapshot snap;
  snap.counters.push_back({"evil.lint", 4});  // Unlabeled + labeled family.
  snap.counters.push_back({"evil.lint{v=\"a\\b \"quote\" \nnl\"}", 1});
  snap.counters.push_back(
      {LabeledName("evil.lint", {{"v", "pre \\ \" \n post"}}), 2});
  snap.gauges.push_back({"evil.gauge{v=\"trailing\\\"}", 7});
  EXPECT_EQ(RunPromLinter(PrometheusText(snap), "hostile"), 0);

  // A raw backslash (an escape the format does not define) must fail.
  EXPECT_NE(RunPromLinter("# TYPE alp_bad_total counter\n"
                          "alp_bad_total{k=\"a\\d\"} 1\n",
                          "rawescape"),
            0);

  // An empty registry exports an empty exposition; that lints clean too.
  EXPECT_TRUE(PrometheusText(MetricsSnapshot{}).empty());
  EXPECT_EQ(RunPromLinter(PrometheusText(MetricsSnapshot{}), "empty"), 0);
}

#endif  // ALP_TOOLS_DIR

}  // namespace
}  // namespace alp::obs
