// Tests for the ALP per-vector encoder/decoder (Algorithms 1 and 2): the
// fast rounding trick, exception detection and patching, bit-exact
// round-trips on adversarial values, and the size estimator the sampler
// relies on.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "alp/encoder.h"
#include "util/bits.h"

namespace alp {
namespace {

std::vector<double> DecimalVector(int digits_before, int precision, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<double> values(kVectorSize);
  const double f10 = AlpTraits<double>::kF10[precision];
  int64_t scale = 1;
  for (int i = 0; i < digits_before; ++i) scale *= 10;
  for (auto& v : values) {
    const int64_t d = static_cast<int64_t>(rng() % (scale * static_cast<int64_t>(f10)));
    v = static_cast<double>(d) / f10;
  }
  return values;
}

/// Encode + FFOR-free decode + patch, returning the reconstruction.
std::vector<double> RoundTrip(const std::vector<double>& in, Combination c,
                              uint16_t* exc_count = nullptr) {
  EncodedVector<double> enc;
  EncodeVector(in.data(), static_cast<unsigned>(in.size()), c, &enc);
  std::vector<double> out(kVectorSize);
  DecodeVector<double>(enc.encoded, c, out.data());
  PatchExceptions(out.data(), enc.exceptions, enc.exc_positions, enc.exc_count);
  out.resize(in.size());
  if (exc_count != nullptr) *exc_count = enc.exc_count;
  return out;
}

bool BitEqual(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (BitsOf(a[i]) != BitsOf(b[i])) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Constants.
// ---------------------------------------------------------------------------

TEST(Constants, PowersOfTenAreExact) {
  // Every F10 entry must be the exact integer power of ten (10^e has an
  // exact double representation for e <= 22; we use e <= 18).
  int64_t expected = 1;
  for (int e = 0; e <= AlpTraits<double>::kMaxExponent; ++e) {
    EXPECT_EQ(AlpTraits<double>::kF10[e], static_cast<double>(expected)) << e;
    EXPECT_EQ(static_cast<int64_t>(AlpTraits<double>::kF10[e]), expected) << e;
    if (e < AlpTraits<double>::kMaxExponent) expected *= 10;
  }
  int64_t expected_f = 1;  // 10^10 exceeds int32.
  for (int e = 0; e <= AlpTraits<float>::kMaxExponent; ++e) {
    EXPECT_EQ(AlpTraits<float>::kF10[e], static_cast<float>(expected_f)) << e;
    if (e < AlpTraits<float>::kMaxExponent) expected_f = expected_f * 10;
  }
}

TEST(Constants, InversePowersAreNearestDoubles) {
  // iF10[e] must be the correctly-rounded double closest to 10^-e (what
  // the literal produces); spot-check against division by the exact power.
  for (int e = 0; e <= AlpTraits<double>::kMaxExponent; ++e) {
    EXPECT_EQ(BitsOf(AlpTraits<double>::kIF10[e]),
              BitsOf(1.0 / AlpTraits<double>::kF10[e]))
        << e;
  }
}

TEST(Constants, MagicNumbers) {
  EXPECT_EQ(AlpTraits<double>::kMagic, 6755399441055744.0);  // 2^52 + 2^51.
  EXPECT_EQ(AlpTraits<float>::kMagic, 12582912.0f);          // 2^23 + 2^22.
  EXPECT_EQ(AlpTraits<double>::kMagicBias, int64_t{1} << 51);
  EXPECT_EQ(AlpTraits<float>::kMagicBias, int32_t{1} << 22);
}

// ---------------------------------------------------------------------------
// FastRound.
// ---------------------------------------------------------------------------

TEST(FastRound, MatchesRoundHalfToEvenInRange) {
  EXPECT_EQ(FastRound(0.0), 0);
  EXPECT_EQ(FastRound(1.4), 1);
  EXPECT_EQ(FastRound(1.6), 2);
  EXPECT_EQ(FastRound(-1.4), -1);
  EXPECT_EQ(FastRound(-1.6), -2);
  // Ties round to even (the addition's rounding mode).
  EXPECT_EQ(FastRound(0.5), 0);
  EXPECT_EQ(FastRound(1.5), 2);
  EXPECT_EQ(FastRound(2.5), 2);
  EXPECT_EQ(FastRound(-0.5), 0);
  EXPECT_EQ(FastRound(-1.5), -2);
}

TEST(FastRound, LargeMagnitudesInsideRange) {
  const int64_t big = (int64_t{1} << 50) + 12345;
  EXPECT_EQ(FastRound(static_cast<double>(big)), big);
  EXPECT_EQ(FastRound(static_cast<double>(-big)), -big);
}

TEST(FastRound, RandomIntegersPlusFractions) {
  std::mt19937_64 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const int64_t base =
        static_cast<int64_t>(rng() % (uint64_t{1} << 48)) - (int64_t{1} << 47);
    const double frac = 0.25 * static_cast<double>(rng() % 3);  // 0, .25, .5
    const double v = static_cast<double>(base) + frac;
    const int64_t expected = std::llrint(v);  // Round-half-even, like the trick.
    ASSERT_EQ(FastRound(v), expected) << v;
  }
}

TEST(FastRound, Float32Variant) {
  EXPECT_EQ(FastRound(0.0f), 0);
  EXPECT_EQ(FastRound(2.5f), 2);
  EXPECT_EQ(FastRound(3.5f), 4);
  EXPECT_EQ(FastRound(-1234.49f), -1234);
}

TEST(FastRound, OutOfRangeIsDeterministicNotUb) {
  // Values beyond 2^51 produce a wrong but defined result; the encoder's
  // verification turns these into exceptions.
  const double huge = 1e300;
  const int64_t r1 = FastRound(huge);
  const int64_t r2 = FastRound(huge);
  EXPECT_EQ(r1, r2);
}

// ---------------------------------------------------------------------------
// EncodeVector / DecodeVector.
// ---------------------------------------------------------------------------

TEST(Encoder, PaperExampleRoundTrips) {
  // The running example of Section 2.5/2.6: 8.0605 with e=14, f=10.
  std::vector<double> in(kVectorSize, 8.0605);
  uint16_t exc = 0;
  const auto out = RoundTrip(in, Combination{14, 10}, &exc);
  EXPECT_EQ(exc, 0);
  EXPECT_TRUE(BitEqual(in, out));

  // And the encoded integer is the paper's d = 80605.
  EncodedVector<double> enc;
  EncodeVector(in.data(), kVectorSize, Combination{14, 10}, &enc);
  EXPECT_EQ(enc.encoded[0], 80605);
}

TEST(Encoder, PaperExampleFailsWithNaiveExponent) {
  // Section 2.5 shows e=4 (the visible precision) cannot recover 8.0605.
  std::vector<double> in(kVectorSize, 8.0605);
  uint16_t exc = 0;
  const auto out = RoundTrip(in, Combination{4, 0}, &exc);
  EXPECT_EQ(exc, kVectorSize);  // All become exceptions...
  EXPECT_TRUE(BitEqual(in, out));  // ...but patching still restores them.
}

TEST(Encoder, TwoDecimalPrices) {
  auto in = DecimalVector(3, 2, 42);
  uint16_t exc = 0;
  const auto out = RoundTrip(in, Combination{14, 12}, &exc);
  EXPECT_TRUE(BitEqual(in, out));
  EXPECT_EQ(exc, 0);
}

TEST(Encoder, PartialVector) {
  auto in = DecimalVector(2, 3, 7);
  in.resize(100);
  const auto out = RoundTrip(in, Combination{14, 11});
  EXPECT_TRUE(BitEqual(in, out));
}

TEST(Encoder, SingleValueVector) {
  std::vector<double> in = {12.75};
  const auto out = RoundTrip(in, Combination{14, 12});
  EXPECT_TRUE(BitEqual(in, out));
}

TEST(Encoder, SpecialValuesBecomeExceptionsAndRoundTrip) {
  std::vector<double> in = DecimalVector(2, 2, 9);
  in[0] = std::numeric_limits<double>::quiet_NaN();
  in[1] = std::numeric_limits<double>::infinity();
  in[2] = -std::numeric_limits<double>::infinity();
  in[3] = -0.0;
  in[4] = std::numeric_limits<double>::denorm_min();
  in[5] = 1e300;
  in[6] = DoubleFromBits(0x7FF800000000BEEFULL);  // NaN payload.
  uint16_t exc = 0;
  const auto out = RoundTrip(in, Combination{14, 12}, &exc);
  EXPECT_GE(exc, 6);
  EXPECT_TRUE(BitEqual(in, out));
}

TEST(Encoder, AllExceptionsVector) {
  // Full-precision values: nothing encodes, everything patches.
  std::mt19937_64 rng(13);
  std::vector<double> in(kVectorSize);
  for (auto& v : in) v = DoubleFromBits((rng() % (uint64_t{1} << 62)) | 0x3FF0000000000000ULL);
  uint16_t exc = 0;
  const auto out = RoundTrip(in, Combination{14, 0}, &exc);
  EXPECT_TRUE(BitEqual(in, out));
  EXPECT_GT(exc, kVectorSize / 2);
}

TEST(Encoder, ExceptionSlotsUseFirstEncodedValue) {
  std::vector<double> in(kVectorSize, 1.25);
  in[0] = std::numeric_limits<double>::quiet_NaN();  // Exception at front.
  EncodedVector<double> enc;
  EncodeVector(in.data(), kVectorSize, Combination{14, 12}, &enc);
  ASSERT_EQ(enc.exc_count, 1);
  EXPECT_EQ(enc.exc_positions[0], 0);
  // The patched slot holds the first successfully encoded value (slot 1).
  EXPECT_EQ(enc.encoded[0], enc.encoded[1]);
}

TEST(Encoder, NegativeValues) {
  std::vector<double> in(kVectorSize);
  for (unsigned i = 0; i < kVectorSize; ++i) {
    in[i] = -static_cast<double>(i) - 0.5;
  }
  const auto out = RoundTrip(in, Combination{14, 13});
  EXPECT_TRUE(BitEqual(in, out));
}

TEST(Encoder, IntegersEncodeWithExponentZero) {
  std::vector<double> in(kVectorSize);
  for (unsigned i = 0; i < kVectorSize; ++i) in[i] = static_cast<double>(i * 3);
  uint16_t exc = 0;
  const auto out = RoundTrip(in, Combination{0, 0}, &exc);
  EXPECT_EQ(exc, 0);
  EXPECT_TRUE(BitEqual(in, out));
}

class EncoderCombinationTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EncoderCombinationTest, RoundTripsOnMatchingPrecisionData) {
  const int e = std::get<0>(GetParam());
  const int f = std::get<1>(GetParam());
  if (f > e) GTEST_SKIP();
  const int precision = e - f;
  if (precision > 15) GTEST_SKIP();
  std::mt19937_64 rng(e * 100 + f);
  std::vector<double> in(kVectorSize);
  const double grid = AlpTraits<double>::kF10[precision];
  for (auto& v : in) {
    v = static_cast<double>(static_cast<int64_t>(rng() % 1000000)) / grid;
  }
  uint16_t exc = 0;
  const auto out = RoundTrip(in, Combination{static_cast<uint8_t>(e),
                                             static_cast<uint8_t>(f)},
                             &exc);
  EXPECT_TRUE(BitEqual(in, out));
}

INSTANTIATE_TEST_SUITE_P(Sweep, EncoderCombinationTest,
                         ::testing::Combine(::testing::Values(0, 4, 8, 12, 14, 16, 18),
                                            ::testing::Values(0, 2, 6, 10, 14, 18)));

// ---------------------------------------------------------------------------
// Fused decode path.
// ---------------------------------------------------------------------------

TEST(FusedDecode, MatchesUnfusedPath) {
  auto in = DecimalVector(4, 2, 21);
  EncodedVector<double> enc;
  const Combination c{14, 12};
  EncodeVector(in.data(), kVectorSize, c, &enc);
  const auto ffor = fastlanes::FforAnalyze(enc.encoded, kVectorSize);
  std::vector<uint64_t> packed(kVectorSize);
  fastlanes::FforEncode(enc.encoded, packed.data(), ffor);

  std::vector<double> fused(kVectorSize);
  DecodeVectorFused<double>(packed.data(), ffor, c, fused.data());

  std::vector<double> unfused(kVectorSize);
  std::vector<int64_t> scratch(kVectorSize);
  DecodeVectorUnfused(packed.data(), ffor, c, scratch.data(), unfused.data());

  for (unsigned i = 0; i < kVectorSize; ++i) {
    EXPECT_EQ(BitsOf(fused[i]), BitsOf(unfused[i]));
  }
}

TEST(FusedDecode, FullPipelineBitExact) {
  auto in = DecimalVector(5, 3, 33);
  EncodedVector<double> enc;
  const Combination c{14, 11};
  EncodeVector(in.data(), kVectorSize, c, &enc);
  const auto ffor = fastlanes::FforAnalyze(enc.encoded, kVectorSize);
  std::vector<uint64_t> packed(kVectorSize);
  fastlanes::FforEncode(enc.encoded, packed.data(), ffor);

  std::vector<double> out(kVectorSize);
  DecodeVectorFused<double>(packed.data(), ffor, c, out.data());
  PatchExceptions(out.data(), enc.exceptions, enc.exc_positions, enc.exc_count);
  for (unsigned i = 0; i < kVectorSize; ++i) {
    ASSERT_EQ(BitsOf(out[i]), BitsOf(in[i])) << i;
  }
}

// ---------------------------------------------------------------------------
// EstimateCompressedBits.
// ---------------------------------------------------------------------------

TEST(Estimate, PrefersCorrectCombination) {
  auto in = DecimalVector(2, 2, 55);  // xx.yy prices.
  // (14,12) encodes exactly (precision 2); (14,14) would round away digits.
  const uint64_t good = EstimateCompressedBits(in.data(), 64, Combination{14, 12});
  const uint64_t bad = EstimateCompressedBits(in.data(), 64, Combination{14, 14});
  EXPECT_LT(good, bad);
}

TEST(Estimate, CountsExceptions) {
  std::vector<double> in(64, std::numeric_limits<double>::quiet_NaN());
  unsigned exc = 0;
  const uint64_t bits = EstimateCompressedBits(in.data(), 64, Combination{14, 12}, &exc);
  EXPECT_EQ(exc, 64u);
  EXPECT_EQ(bits, 64u * AlpTraits<double>::kExceptionBits);
}

TEST(Estimate, ConstantVectorIsTiny) {
  std::vector<double> in(64, 9.5);
  const uint64_t bits = EstimateCompressedBits(in.data(), 64, Combination{14, 13});
  EXPECT_EQ(bits, 0u);  // Width 0, no exceptions.
}

}  // namespace
}  // namespace alp
