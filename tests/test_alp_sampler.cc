// Tests for the two-level adaptive sampler (Section 3.2): full-search
// reference, level-1 rowgroup analysis (combination ranking, scheme
// decision) and level-2 per-vector selection with early exit.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "alp/encoder.h"
#include "alp/sampler.h"
#include "util/bits.h"

namespace alp {
namespace {

std::vector<double> DecimalData(size_t n, int precision, int64_t max_d, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<double> values(n);
  const double f10 = AlpTraits<double>::kF10[precision];
  for (auto& v : values) {
    v = static_cast<double>(static_cast<int64_t>(rng() % max_d)) / f10;
  }
  return values;
}

TEST(FindBestCombination, RecoversPrecisionOfDecimalData) {
  const auto data = DecimalData(kVectorSize, 2, 100000, 1);
  const Combination best = FindBestCombination(data.data(), kVectorSize);
  // Best combination must encode the 2-decimal grid: e - f == 2.
  EXPECT_EQ(static_cast<int>(best.e) - static_cast<int>(best.f), 2);
}

TEST(FindBestCombination, IntegersPreferEqualExponentAndFactor) {
  const auto data = DecimalData(kVectorSize, 0, 100000, 2);
  const Combination best = FindBestCombination(data.data(), kVectorSize);
  EXPECT_EQ(best.e, best.f);  // No decimals to shift.
}

TEST(FindBestCombination, ReportsEstimatedBits) {
  const auto data = DecimalData(kVectorSize, 3, 1000000, 3);
  uint64_t bits = UINT64_MAX;
  FindBestCombination(data.data(), kVectorSize, &bits);
  EXPECT_LT(bits, kVectorSize * 64u);  // Compresses below raw.
  EXPECT_GT(bits, 0u);
}

TEST(AnalyzeRowgroup, SingleCombinationDataset) {
  // Uniform 2-decimal data: every sampled vector agrees on the winner.
  const auto data = DecimalData(kRowgroupSize, 2, 100000, 4);
  const RowgroupAnalysis analysis = AnalyzeRowgroup(data.data(), data.size());
  EXPECT_EQ(analysis.scheme, Scheme::kAlp);
  ASSERT_GE(analysis.combinations.size(), 1u);
  EXPECT_LE(analysis.combinations.size(), 5u);
}

TEST(AnalyzeRowgroup, MixedPrecisionYieldsMultipleCombinations) {
  std::vector<double> data;
  data.reserve(kRowgroupSize);
  // Mix vectors of 1-decimal and 5-decimal values. The period is coprime
  // with the sampler's equidistant vector stride (100 / 8 = 12), so the
  // level-1 sample sees both precisions.
  for (unsigned v = 0; v < kRowgroupVectors; ++v) {
    const int p = (v % 5 == 0) ? 1 : 5;
    const auto vec = DecimalData(kVectorSize, p, 100000, 100 + v);
    data.insert(data.end(), vec.begin(), vec.end());
  }
  const RowgroupAnalysis analysis = AnalyzeRowgroup(data.data(), data.size());
  EXPECT_EQ(analysis.scheme, Scheme::kAlp);
  EXPECT_GE(analysis.combinations.size(), 2u);
}

TEST(AnalyzeRowgroup, RespectsMaxCombinations) {
  std::vector<double> data;
  for (unsigned v = 0; v < kRowgroupVectors; ++v) {
    const int p = static_cast<int>(v % 8);
    const auto vec = DecimalData(kVectorSize, p, 1000000, 200 + v);
    data.insert(data.end(), vec.begin(), vec.end());
  }
  SamplerConfig config;
  config.max_combinations = 3;
  const RowgroupAnalysis analysis = AnalyzeRowgroup(data.data(), data.size(), config);
  EXPECT_LE(analysis.combinations.size(), 3u);
}

TEST(AnalyzeRowgroup, FullEntropyDataSwitchesToRd) {
  std::mt19937_64 rng(5);
  std::vector<double> data(kRowgroupSize);
  for (auto& v : data) v = 0.5 + static_cast<double>(rng() >> 11) * 0x1.0p-53;
  const RowgroupAnalysis analysis = AnalyzeRowgroup(data.data(), data.size());
  EXPECT_EQ(analysis.scheme, Scheme::kAlpRd);
}

TEST(AnalyzeRowgroup, ThresholdZeroForcesRd) {
  const auto data = DecimalData(kRowgroupSize, 2, 100000, 6);
  SamplerConfig config;
  config.rd_threshold_bits_per_value = 0;
  const RowgroupAnalysis analysis = AnalyzeRowgroup(data.data(), data.size(), config);
  EXPECT_EQ(analysis.scheme, Scheme::kAlpRd);
}

TEST(AnalyzeRowgroup, EmptyAndTinyInputs) {
  const RowgroupAnalysis empty = AnalyzeRowgroup<double>(nullptr, 0);
  EXPECT_EQ(empty.scheme, Scheme::kAlp);
  ASSERT_EQ(empty.combinations.size(), 1u);

  const auto tiny = DecimalData(5, 2, 1000, 7);
  const RowgroupAnalysis analysis = AnalyzeRowgroup(tiny.data(), tiny.size());
  EXPECT_EQ(analysis.scheme, Scheme::kAlp);
  EXPECT_GE(analysis.combinations.size(), 1u);
}

TEST(ChooseForVector, SingleCandidateSkipsLevelTwo) {
  const auto data = DecimalData(kVectorSize, 2, 100000, 8);
  const std::vector<Combination> candidates = {{14, 12}};
  SamplerStats stats;
  const Combination chosen =
      ChooseForVector(data.data(), kVectorSize, candidates, {}, &stats);
  EXPECT_EQ(chosen, (Combination{14, 12}));
  EXPECT_EQ(stats.vectors, 0u);
  EXPECT_EQ(stats.vectors_skipped, 1u);
  EXPECT_EQ(stats.combinations_tried, 0u);
}

TEST(ChooseForVector, PicksBetterOfTwoCandidates) {
  const auto data = DecimalData(kVectorSize, 4, 1000000, 9);
  // (14,10) preserves 4 decimals; (14,14) destroys them.
  const std::vector<Combination> candidates = {{14, 14}, {14, 10}};
  SamplerStats stats;
  const Combination chosen =
      ChooseForVector(data.data(), kVectorSize, candidates, {}, &stats);
  EXPECT_EQ(chosen, (Combination{14, 10}));
  EXPECT_EQ(stats.vectors, 1u);
  EXPECT_EQ(stats.combinations_tried, 2u);
}

TEST(ChooseForVector, EarlyExitAfterTwoWorse) {
  const auto data = DecimalData(kVectorSize, 1, 10000, 10);
  // First candidate is perfect; the rest are all worse. The early-exit rule
  // stops after two consecutive non-improvements.
  const std::vector<Combination> candidates = {{14, 13}, {14, 14}, {4, 4}, {2, 2}, {0, 0}};
  SamplerStats stats;
  const Combination chosen =
      ChooseForVector(data.data(), kVectorSize, candidates, {}, &stats);
  EXPECT_EQ(chosen, (Combination{14, 13}));
  EXPECT_LE(stats.combinations_tried, 3u);
}

TEST(ChooseForVector, HistogramBucketsMatchTried) {
  const auto data = DecimalData(kVectorSize, 2, 100000, 11);
  const std::vector<Combination> candidates = {{14, 12}, {14, 11}};
  SamplerStats stats;
  ChooseForVector(data.data(), kVectorSize, candidates, {}, &stats);
  uint64_t total = 0;
  for (uint64_t h : stats.tried_histogram) total += h;
  EXPECT_EQ(total, stats.vectors);
}

TEST(ChooseForVector, ChosenCombinationEncodesLosslessly) {
  const auto data = DecimalData(kVectorSize, 3, 1000000, 12);
  const RowgroupAnalysis analysis = AnalyzeRowgroup(data.data(), data.size());
  ASSERT_EQ(analysis.scheme, Scheme::kAlp);
  const Combination c =
      ChooseForVector(data.data(), kVectorSize, analysis.combinations);
  EncodedVector<double> enc;
  EncodeVector(data.data(), kVectorSize, c, &enc);
  std::vector<double> out(kVectorSize);
  DecodeVector<double>(enc.encoded, c, out.data());
  PatchExceptions(out.data(), enc.exceptions, enc.exc_positions, enc.exc_count);
  for (unsigned i = 0; i < kVectorSize; ++i) {
    ASSERT_EQ(BitsOf(out[i]), BitsOf(data[i]));
  }
  // And most values should encode without exceptions on decimal data.
  EXPECT_LT(enc.exc_count, kVectorSize / 10);
}

}  // namespace
}  // namespace alp
