// Shared column-building fixtures for the robustness test tier
// (test_corruption, test_golden, test_parallel). Everything here is
// deterministic: the same seed always builds the same values and - because
// the encoder is byte-deterministic - the same compressed buffer, which is
// what lets the golden-vector suite pin exact bytes and the corruption
// suite replay exact mutations.
#ifndef ALP_TESTS_TEST_FIXTURES_H_
#define ALP_TESTS_TEST_FIXTURES_H_

#include <cstdint>
#include <cstring>
#include <random>
#include <utility>
#include <vector>

#include "alp/alp.h"
#include "util/bits.h"
#include "util/status.h"

namespace alp {
namespace testutil {

/// Mostly-decimal data (compresses via ALP) with occasional specials.
inline std::vector<double> DecimalData(uint64_t seed, size_t n) {
  std::mt19937_64 rng(seed);
  std::vector<double> data(n);
  for (auto& v : data) {
    switch (rng() % 16) {
      case 0: v = DoubleFromBits(rng()); break;  // Exception fodder.
      case 1: v = 0.0; break;
      default: {
        const int64_t d = static_cast<int64_t>(rng() % 1000000) - 500000;
        v = static_cast<double>(d) / 100.0;
        break;
      }
    }
  }
  return data;
}

/// Full-precision reals: the sampler sends these rowgroups to ALP_rd.
inline std::vector<double> HighPrecisionData(uint64_t seed, size_t n) {
  std::mt19937_64 rng(seed);
  std::vector<double> data(n);
  for (auto& v : data) {
    v = DoubleFromBits((rng() & 0x000FFFFFFFFFFFFFULL) | 0x3FE0000000000000ULL);
  }
  return data;
}

struct Corpus {
  const char* name;
  std::vector<double> values;
  std::vector<uint8_t> buffer;
};

inline Corpus MakeCorpus(const char* name, std::vector<double> values) {
  Corpus corpus;
  corpus.name = name;
  corpus.values = std::move(values);
  corpus.buffer = CompressColumn(corpus.values.data(), corpus.values.size());
  return corpus;
}

/// Small single-rowgroup ALP column (small enough to flip every bit of).
inline const Corpus& AlpSmall() {
  static const Corpus corpus =
      MakeCorpus("alp_small", DecimalData(101, 2 * kVectorSize + 77));
  return corpus;
}

/// Small ALP_rd column, exercising the RdHeader/dictionary paths.
inline const Corpus& RdSmall() {
  static const Corpus corpus =
      MakeCorpus("rd_small", HighPrecisionData(202, kVectorSize + 13));
  return corpus;
}

/// Two rowgroups, mixed schemes, for seeded random mutations and for
/// exercising per-rowgroup parallelism with more than one task.
inline const Corpus& TwoRowgroups() {
  static const Corpus corpus = [] {
    std::vector<double> values = DecimalData(303, kRowgroupSize);
    const std::vector<double> tail =
        HighPrecisionData(304, 3 * kVectorSize + 5);
    values.insert(values.end(), tail.begin(), tail.end());
    return MakeCorpus("two_rowgroups", std::move(values));
  }();
  return corpus;
}

enum class MutationOutcome { kRejected, kRoundTripped, kSilentCorruption };

/// Decodes a (possibly mutated) buffer through the fallible path and
/// classifies the result against the original values.
inline MutationOutcome Classify(const std::vector<uint8_t>& buffer,
                                const std::vector<double>& original) {
  StatusOr<ColumnReader<double>> reader =
      ColumnReader<double>::Open(buffer.data(), buffer.size());
  if (!reader.ok()) return MutationOutcome::kRejected;
  if (reader->value_count() != original.size()) {
    return MutationOutcome::kSilentCorruption;
  }
  std::vector<double> out(reader->value_count());
  if (!reader->TryDecodeAll(out.data()).ok()) return MutationOutcome::kRejected;
  return std::memcmp(out.data(), original.data(),
                     original.size() * sizeof(double)) == 0
             ? MutationOutcome::kRoundTripped
             : MutationOutcome::kSilentCorruption;
}

/// Byte offset of the version field inside ColumnHeader. Flipping it is the
/// one mutation checksums cannot flag (a 3 -> 2 downgrade disables
/// verification), so those cases fall back to the reject-or-round-trip
/// invariant instead of must-reject.
constexpr size_t kVersionByte = 4;

/// Rewrites a v3 buffer as the v2 layout it extends: drops the rowgroup
/// checksum section and the header checksum slot, and rebases the rowgroup
/// offsets. The result is byte-identical to what the v2 writer produced.
inline std::vector<uint8_t> StripToV2(const std::vector<uint8_t>& v3) {
  uint64_t value_count = 0;
  uint32_t rowgroup_count = 0;
  std::memcpy(&value_count, v3.data() + 8, sizeof(value_count));
  std::memcpy(&rowgroup_count, v3.data() + 16, sizeof(rowgroup_count));
  const size_t total_vectors = (value_count + kVectorSize - 1) / kVectorSize;

  const size_t offsets_at = 24;
  const size_t checksums_at = offsets_at + size_t{rowgroup_count} * 8;
  const size_t stats_at = checksums_at + size_t{rowgroup_count} * 8;
  const size_t header_checksum_at = stats_at + total_vectors * 16;
  const size_t payload_begin = header_checksum_at + 8;
  const size_t delta = payload_begin - (checksums_at + total_vectors * 16);

  std::vector<uint8_t> v2;
  v2.insert(v2.end(), v3.begin(), v3.begin() + checksums_at);
  v2.insert(v2.end(), v3.begin() + stats_at, v3.begin() + header_checksum_at);
  v2.insert(v2.end(), v3.begin() + payload_begin, v3.end());
  v2[kVersionByte] = 2;
  for (uint32_t rg = 0; rg < rowgroup_count; ++rg) {
    uint64_t offset = 0;
    std::memcpy(&offset, v2.data() + offsets_at + rg * 8, sizeof(offset));
    offset -= delta;
    std::memcpy(v2.data() + offsets_at + rg * 8, &offset, sizeof(offset));
  }
  return v2;
}

}  // namespace testutil
}  // namespace alp

#endif  // ALP_TESTS_TEST_FIXTURES_H_
