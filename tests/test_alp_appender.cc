// Tests for the streaming ColumnAppender: the incremental path must produce
// buffers indistinguishable from one-shot CompressColumn, across rowgroup
// boundaries, batch shapes and value types.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "alp/appender.h"
#include "util/bits.h"

namespace alp {
namespace {

std::vector<double> Decimals(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<double> values(n);
  for (auto& v : values) {
    v = static_cast<double>(static_cast<int64_t>(rng() % 1000000)) / 100.0;
  }
  return values;
}

void ExpectBitExact(const std::vector<double>& a, const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(BitsOf(a[i]), BitsOf(b[i])) << i;
  }
}

TEST(Appender, MatchesOneShotCompression) {
  const auto data = Decimals(kRowgroupSize * 2 + 12345, 1);
  ColumnAppender<double> appender;
  for (double v : data) appender.Append(v);
  EXPECT_EQ(appender.value_count(), data.size());
  const auto streamed = appender.Finish();
  const auto one_shot = CompressColumn(data.data(), data.size());
  EXPECT_EQ(streamed, one_shot);  // Byte-identical buffers.
}

TEST(Appender, BatchAppendAcrossRowgroupBoundaries) {
  const auto data = Decimals(kRowgroupSize * 3 + 17, 2);
  ColumnAppender<double> appender;
  // Odd batch sizes that straddle rowgroup boundaries.
  size_t i = 0;
  const size_t batches[] = {1, 777, kRowgroupSize - 1, kRowgroupSize + 1, 50000};
  size_t b = 0;
  while (i < data.size()) {
    const size_t take = std::min(batches[b++ % 5], data.size() - i);
    appender.AppendBatch(data.data() + i, take);
    i += take;
  }
  const auto buffer = appender.Finish();
  std::vector<double> out(data.size());
  DecompressColumn(buffer, out.data());
  ExpectBitExact(data, out);
}

TEST(Appender, EmptyColumn) {
  ColumnAppender<double> appender;
  const auto buffer = appender.Finish();
  ColumnReader<double> reader(buffer.data(), buffer.size());
  EXPECT_EQ(reader.value_count(), 0u);
}

TEST(Appender, SingleValue) {
  ColumnAppender<double> appender;
  appender.Append(-42.125);
  const auto buffer = appender.Finish();
  ColumnReader<double> reader(buffer.data(), buffer.size());
  ASSERT_EQ(reader.value_count(), 1u);
  double out = 0;
  reader.DecodeVector(0, &out);
  EXPECT_EQ(out, -42.125);
}

TEST(Appender, ExactlyOneRowgroup) {
  const auto data = Decimals(kRowgroupSize, 3);
  ColumnAppender<double> appender;
  appender.AppendBatch(data.data(), data.size());
  // The rowgroup flushed eagerly: compressed bytes are already visible.
  EXPECT_GT(appender.compressed_bytes(), 0u);
  const auto buffer = appender.Finish();
  EXPECT_EQ(buffer, CompressColumn(data.data(), data.size()));
}

TEST(Appender, ReusableAfterFinish) {
  ColumnAppender<double> appender;
  const auto first = Decimals(5000, 4);
  appender.AppendBatch(first.data(), first.size());
  const auto buffer1 = appender.Finish();
  EXPECT_EQ(appender.value_count(), 0u);

  const auto second = Decimals(3000, 5);
  appender.AppendBatch(second.data(), second.size());
  const auto buffer2 = appender.Finish();

  std::vector<double> out1(first.size());
  DecompressColumn(buffer1, out1.data());
  ExpectBitExact(first, out1);
  std::vector<double> out2(second.size());
  DecompressColumn(buffer2, out2.data());
  ExpectBitExact(second, out2);
}

TEST(Appender, InfoAccumulates) {
  const auto data = Decimals(kRowgroupSize * 2, 6);
  ColumnAppender<double> appender;
  appender.AppendBatch(data.data(), data.size());
  EXPECT_EQ(appender.info().rowgroups, 2u);
  EXPECT_EQ(appender.info().vectors, 2u * kRowgroupVectors);
}

TEST(Appender, FloatColumn) {
  std::mt19937_64 rng(7);
  std::vector<float> data(kRowgroupSize + 99);
  for (auto& v : data) {
    v = static_cast<float>(static_cast<int32_t>(rng() % 100000)) / 10.0f;
  }
  ColumnAppender<float> appender;
  appender.AppendBatch(data.data(), data.size());
  const auto buffer = appender.Finish();
  std::vector<float> out(data.size());
  DecompressColumn(buffer, out.data());
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(BitsOf(out[i]), BitsOf(data[i]));
  }
}

TEST(Appender, ValidatesAgainstReader) {
  const auto data = Decimals(123456, 8);
  ColumnAppender<double> appender;
  appender.AppendBatch(data.data(), data.size());
  const auto buffer = appender.Finish();
  std::string reason;
  EXPECT_TRUE(ValidateColumn<double>(buffer.data(), buffer.size(), &reason)) << reason;
}

}  // namespace
}  // namespace alp
