// Torture tests for the out-of-core column stack: RandomAccessSource
// implementations, the sharded DecodedVectorCache, and SeekableReader's
// chunked fetch -> verify -> open -> decode -> publish pipeline.
//
// The load-bearing invariants proved here:
//  - Byte identity: every seekable read path (point lookup, rowgroup,
//    filtered scan, full scan) returns exactly the bytes the in-memory
//    ColumnReader oracle returns, over memory, mmap and pread sources,
//    for v3 and v2 columns, cached and uncached.
//  - Status parity: a mutated or truncated file surfaces the same Status
//    class through the seekable path as through the in-memory validator.
//  - Corruption in an uncached chunk surfaces on first touch and never
//    poisons the cache: nothing is inserted unless the chunk checksum and
//    the structural walk and the vector decode all passed.
//  - The cache stays within its byte budget with LRU eviction order, under
//    1/2/4/8 concurrent readers, and cancellation mid-prefetch leaves it
//    consistent.
//
// The LargeFile.* tests are the out-of-core CI proof: they stream-write a
// column several times larger than the address-space rlimit the CI job
// scans it under, then verify byte identity via a running checksum (the
// scan itself never holds more than the index region plus a few chunks).
// They skip unless ALP_LARGE_FILE_DIR is set.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "alp/alp.h"
#include "alp/appender.h"
#include "io/decoded_vector_cache.h"
#include "io/random_access_source.h"
#include "io/seekable_reader.h"
#include "obs/metrics.h"
#include "test_fixtures.h"
#include "util/cancellation.h"
#include "util/checksum.h"
#include "util/fault_injection.h"
#include "util/file_io.h"
#include "util/thread_pool.h"

namespace alp {
namespace {

using io::DecodedVectorCache;
using io::MemorySource;
using io::MmapSource;
using io::PreadSource;
using io::RandomAccessSource;
using io::SeekableReader;
using io::SeekableReaderOptions;
using testutil::AlpSmall;
using testutil::Corpus;
using testutil::DecimalData;
using testutil::HighPrecisionData;
using testutil::RdSmall;
using testutil::StripToV2;
using testutil::TwoRowgroups;

struct FaultGuard {
  FaultGuard() { fault::DisarmAll(); }
  ~FaultGuard() {
    fault::DisarmAll();
    fault::SetEnabled(false);
  }
};

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

/// Writes \p buffer to a temp file and returns its path.
std::string WriteTemp(const std::string& name,
                      const std::vector<uint8_t>& buffer) {
  const std::string path = TempPath(name);
  EXPECT_TRUE(WriteFileBytes(path, buffer.data(), buffer.size()));
  return path;
}

enum class SourceKind { kMemory, kMmap, kPread };

const char* SourceKindName(SourceKind kind) {
  switch (kind) {
    case SourceKind::kMemory: return "memory";
    case SourceKind::kMmap: return "mmap";
    case SourceKind::kPread: return "pread";
  }
  return "?";
}

/// Builds a source of the requested kind over \p buffer (file-backed kinds
/// write a temp file named after the test + kind).
std::shared_ptr<RandomAccessSource> MakeSource(
    SourceKind kind, const std::vector<uint8_t>& buffer,
    const std::string& name) {
  switch (kind) {
    case SourceKind::kMemory:
      return std::make_shared<MemorySource>(buffer.data(), buffer.size());
    case SourceKind::kMmap: {
      auto source = MmapSource::Open(WriteTemp(name + ".mmap.alp", buffer));
      EXPECT_TRUE(source.ok()) << source.status().ToString();
      return source.ok() ? *source : nullptr;
    }
    case SourceKind::kPread: {
      auto source = PreadSource::Open(WriteTemp(name + ".pread.alp", buffer));
      EXPECT_TRUE(source.ok()) << source.status().ToString();
      return source.ok() ? *source : nullptr;
    }
  }
  return nullptr;
}

std::shared_ptr<SeekableReader<double>> OpenSeekable(
    std::shared_ptr<RandomAccessSource> source,
    SeekableReaderOptions options = {}) {
  auto reader = SeekableReader<double>::Open(std::move(source), options);
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  return reader.ok() ? *reader : nullptr;
}

/// End-to-end Status of the seekable path on \p buffer: open + full decode.
Status SeekableOutcome(const std::vector<uint8_t>& buffer) {
  auto reader = SeekableReader<double>::Open(
      std::make_shared<MemorySource>(buffer.data(), buffer.size()));
  if (!reader.ok()) return reader.status();
  std::vector<double> out((*reader)->vector_count() * kVectorSize);
  return (*reader)->TryDecodeAll(out.data());
}

/// End-to-end Status of the in-memory oracle on the same bytes.
Status OracleOutcome(const std::vector<uint8_t>& buffer) {
  auto reader = ColumnReader<double>::Open(buffer.data(), buffer.size());
  if (!reader.ok()) return reader.status();
  std::vector<double> out(reader->vector_count() * kVectorSize);
  return reader->TryDecodeAll(out.data());
}

// ---------------------------------------------------------------------------
// RandomAccessSource contracts.

TEST(RandomAccessSource, MemoryMmapPreadAgreeByteForByte) {
  const Corpus& corpus = AlpSmall();
  for (SourceKind kind :
       {SourceKind::kMemory, SourceKind::kMmap, SourceKind::kPread}) {
    SCOPED_TRACE(SourceKindName(kind));
    auto source = MakeSource(kind, corpus.buffer, "source_agree");
    ASSERT_NE(source, nullptr);
    EXPECT_EQ(source->size(), corpus.buffer.size());
    std::mt19937_64 rng(7);
    for (int i = 0; i < 200; ++i) {
      const size_t off = rng() % corpus.buffer.size();
      const size_t len =
          1 + rng() % std::min<size_t>(4096, corpus.buffer.size() - off);
      std::vector<uint8_t> got(len);
      ASSERT_TRUE(source->ReadAt(off, len, got.data()).ok());
      EXPECT_EQ(std::memcmp(got.data(), corpus.buffer.data() + off, len), 0);
    }
    // Reads past EOF are kTruncated with the offending offset, not UB.
    uint8_t byte;
    const Status past = source->ReadAt(corpus.buffer.size(), 1, &byte);
    EXPECT_EQ(past.code(), StatusCode::kTruncated);
    const Status straddle =
        source->ReadAt(corpus.buffer.size() - 1, 2, &byte);
    EXPECT_EQ(straddle.code(), StatusCode::kTruncated);
  }
}

TEST(RandomAccessSource, MissingFileIsIoError) {
  EXPECT_EQ(MmapSource::Open(TempPath("nope.alp")).status().code(),
            StatusCode::kIo);
  EXPECT_EQ(PreadSource::Open(TempPath("nope.alp")).status().code(),
            StatusCode::kIo);
}

// ---------------------------------------------------------------------------
// SeekableReader vs the in-memory oracle.

class SeekableOracleTest : public ::testing::TestWithParam<SourceKind> {};

TEST_P(SeekableOracleTest, MetadataMatchesInMemoryReader) {
  for (const Corpus* corpus : {&AlpSmall(), &RdSmall(), &TwoRowgroups()}) {
    SCOPED_TRACE(corpus->name);
    auto oracle =
        ColumnReader<double>::Open(corpus->buffer.data(), corpus->buffer.size());
    ASSERT_TRUE(oracle.ok());
    auto reader = OpenSeekable(
        MakeSource(GetParam(), corpus->buffer, std::string("meta_") + corpus->name));
    ASSERT_NE(reader, nullptr);
    EXPECT_EQ(reader->value_count(), oracle->value_count());
    EXPECT_EQ(reader->vector_count(), oracle->vector_count());
    EXPECT_EQ(reader->format_version(), oracle->format_version());
    for (size_t v = 0; v < reader->vector_count(); ++v) {
      EXPECT_EQ(reader->VectorLength(v), oracle->VectorLength(v));
      EXPECT_EQ(reader->Stats(v).min, oracle->Stats(v).min);
      EXPECT_EQ(reader->Stats(v).max, oracle->Stats(v).max);
    }
  }
}

TEST_P(SeekableOracleTest, RandomizedSeeksAreByteIdentical) {
  DecodedVectorCache cache(8ull << 20);
  for (const Corpus* corpus : {&AlpSmall(), &RdSmall(), &TwoRowgroups()}) {
    SCOPED_TRACE(corpus->name);
    auto oracle =
        ColumnReader<double>::Open(corpus->buffer.data(), corpus->buffer.size());
    ASSERT_TRUE(oracle.ok());
    // One cached and one cache-less reader, exercised identically: the
    // cache must never change a single byte of any answer.
    SeekableReaderOptions cached_options;
    cached_options.cache = &cache;
    auto cached = OpenSeekable(
        MakeSource(GetParam(), corpus->buffer, std::string("seek_") + corpus->name),
        cached_options);
    auto uncached = OpenSeekable(
        MakeSource(GetParam(), corpus->buffer,
                   std::string("seek_nc_") + corpus->name));
    ASSERT_NE(cached, nullptr);
    ASSERT_NE(uncached, nullptr);

    std::mt19937_64 rng(0xA1B2C3);
    std::vector<double> expect(kVectorSize);
    std::vector<double> got(kVectorSize);
    for (int i = 0; i < 400; ++i) {
      const size_t v = rng() % oracle->vector_count();
      const unsigned len = oracle->VectorLength(v);
      ASSERT_TRUE(oracle->TryDecodeVector(v, expect.data()).ok());
      for (auto* reader : {cached.get(), uncached.get()}) {
        std::fill(got.begin(), got.end(), -1.0);
        ASSERT_TRUE(reader->TryDecodeVector(v, got.data()).ok());
        ASSERT_EQ(std::memcmp(got.data(), expect.data(), len * sizeof(double)),
                  0)
            << "vector " << v << " iteration " << i;
      }
    }

    // Rowgroup reads and the full scan agree too.
    const size_t rowgroups = (oracle->vector_count() + kRowgroupVectors - 1) /
                             kRowgroupVectors;
    std::vector<double> expect_rg(kRowgroupSize);
    std::vector<double> got_rg(kRowgroupSize);
    for (size_t rg = 0; rg < rowgroups; ++rg) {
      const size_t first = rg * kRowgroupVectors;
      const size_t count =
          std::min<size_t>(kRowgroupVectors, oracle->vector_count() - first);
      for (size_t lv = 0; lv < count; ++lv) {
        ASSERT_TRUE(oracle
                        ->TryDecodeVector(first + lv,
                                          expect_rg.data() + lv * kVectorSize)
                        .ok());
      }
      for (auto* reader : {cached.get(), uncached.get()}) {
        ASSERT_TRUE(reader->TryDecodeRowgroup(rg, got_rg.data()).ok());
        const uint64_t rg_values = reader->RowgroupValueCount(rg);
        for (size_t lv = 0; lv < count; ++lv) {
          const unsigned len = reader->VectorLength(first + lv);
          ASSERT_EQ(std::memcmp(got_rg.data() + lv * kVectorSize,
                                expect_rg.data() + lv * kVectorSize,
                                len * sizeof(double)),
                    0);
        }
        ASSERT_GT(rg_values, 0u);
      }
    }

    std::vector<double> all_expect(oracle->vector_count() * kVectorSize);
    std::vector<double> all_got(all_expect.size());
    ASSERT_TRUE(oracle->TryDecodeAll(all_expect.data()).ok());
    for (auto* reader : {cached.get(), uncached.get()}) {
      std::fill(all_got.begin(), all_got.end(), -1.0);
      ASSERT_TRUE(reader->TryDecodeAll(all_got.data()).ok());
      ASSERT_EQ(std::memcmp(all_got.data(), all_expect.data(),
                            corpus->values.size() * sizeof(double)),
                0);
    }
  }
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST_P(SeekableOracleTest, FilteredScanMatchesOracleAndSkipsRowgroups) {
  const Corpus& corpus = TwoRowgroups();
  auto oracle =
      ColumnReader<double>::Open(corpus.buffer.data(), corpus.buffer.size());
  ASSERT_TRUE(oracle.ok());
  auto reader =
      OpenSeekable(MakeSource(GetParam(), corpus.buffer, "filter_scan"));
  ASSERT_NE(reader, nullptr);

  // Filter on the zone map exactly like the engine's FILTER operator.
  const double lo = -100.0, hi = 100.0;
  const SeekableReader<double>::VectorFilter want = [&](size_t v) {
    return reader->VectorMayContain(v, lo, hi);
  };
  std::vector<size_t> visited;
  std::vector<double> expect(kVectorSize);
  Status s = reader->Scan(
      [&](size_t v, const double* values, unsigned len) {
        visited.push_back(v);
        EXPECT_TRUE(oracle->TryDecodeVector(v, expect.data()).ok());
        EXPECT_EQ(std::memcmp(values, expect.data(), len * sizeof(double)), 0);
        return Status::Ok();
      },
      nullptr, &want);
  ASSERT_TRUE(s.ok()) << s.ToString();
  // The visited set is exactly the zone-map-qualified vectors, in order.
  std::vector<size_t> qualified;
  for (size_t v = 0; v < oracle->vector_count(); ++v) {
    if (oracle->VectorMayContain(v, lo, hi)) qualified.push_back(v);
  }
  EXPECT_EQ(visited, qualified);
}

TEST_P(SeekableOracleTest, V2ColumnsDecodeIdentically) {
  for (const Corpus* corpus : {&AlpSmall(), &TwoRowgroups()}) {
    SCOPED_TRACE(corpus->name);
    const std::vector<uint8_t> v2 = StripToV2(corpus->buffer);
    auto reader = OpenSeekable(
        MakeSource(GetParam(), v2, std::string("v2_") + corpus->name));
    ASSERT_NE(reader, nullptr);
    EXPECT_EQ(reader->format_version(), 2);
    std::vector<double> out(reader->vector_count() * kVectorSize);
    ASSERT_TRUE(reader->TryDecodeAll(out.data()).ok());
    EXPECT_EQ(std::memcmp(out.data(), corpus->values.data(),
                          corpus->values.size() * sizeof(double)),
              0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSources, SeekableOracleTest,
                         ::testing::Values(SourceKind::kMemory,
                                           SourceKind::kMmap,
                                           SourceKind::kPread),
                         [](const auto& info) {
                           return SourceKindName(info.param);
                         });

// ---------------------------------------------------------------------------
// Status parity with the in-memory validator on damaged inputs.

TEST(SeekableStatusParity, TruncationsMatchOracleStatusClass) {
  const Corpus& corpus = TwoRowgroups();
  std::mt19937_64 rng(42);
  std::vector<size_t> cuts = {0, 1, 8, 23, 24, 25};
  for (int i = 0; i < 60; ++i) cuts.push_back(rng() % corpus.buffer.size());
  for (size_t cut : cuts) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    std::vector<uint8_t> truncated(corpus.buffer.begin(),
                                   corpus.buffer.begin() + cut);
    const Status seekable = SeekableOutcome(truncated);
    const Status oracle = OracleOutcome(truncated);
    EXPECT_FALSE(seekable.ok());
    EXPECT_EQ(seekable.code(), oracle.code())
        << "seekable: " << seekable.ToString()
        << " oracle: " << oracle.ToString();
  }
}

TEST(SeekableStatusParity, ByteFlipsMatchOracleStatusClass) {
  // Flip every byte of the small corpus (and a seeded sample of the larger
  // one): whatever the in-memory validator concludes, the seekable path
  // must conclude the same Status class — and when both accept, both must
  // round-trip the original values.
  const auto check = [](const Corpus& corpus, size_t at) {
    std::vector<uint8_t> mutated = corpus.buffer;
    mutated[at] ^= 0x40;
    const Status seekable = SeekableOutcome(mutated);
    const Status oracle = OracleOutcome(mutated);
    ASSERT_EQ(seekable.code(), oracle.code())
        << "byte " << at << " seekable: " << seekable.ToString()
        << " oracle: " << oracle.ToString();
  };
  const Corpus& small = AlpSmall();
  for (size_t at = 0; at < small.buffer.size(); ++at) {
    check(small, at);
  }
  const Corpus& big = TwoRowgroups();
  std::mt19937_64 rng(43);
  for (int i = 0; i < 200; ++i) {
    check(big, rng() % big.buffer.size());
  }
}

TEST(SeekableStatusParity, OutOfRangeIndexesMatchOracle) {
  const Corpus& corpus = AlpSmall();
  auto oracle =
      ColumnReader<double>::Open(corpus.buffer.data(), corpus.buffer.size());
  ASSERT_TRUE(oracle.ok());
  auto reader = OpenSeekable(
      std::make_shared<MemorySource>(corpus.buffer.data(), corpus.buffer.size()));
  ASSERT_NE(reader, nullptr);
  std::vector<double> out(kRowgroupSize);
  const Status seekable_vec =
      reader->TryDecodeVector(reader->vector_count(), out.data());
  const Status oracle_vec =
      oracle->TryDecodeVector(oracle->vector_count(), out.data());
  EXPECT_EQ(seekable_vec.code(), oracle_vec.code());
  EXPECT_EQ(seekable_vec.code(), StatusCode::kCorrupt);
  EXPECT_EQ(reader->TryDecodeRowgroup(reader->rowgroup_count(), out.data())
                .code(),
            StatusCode::kCorrupt);
  EXPECT_EQ(reader->VisitRowgroup(reader->rowgroup_count(),
                                  [](size_t, const double*, unsigned) {
                                    return Status::Ok();
                                  })
                .code(),
            StatusCode::kCorrupt);
}

TEST(SeekableStatusParity, CancellationAndDeadlineShortCircuit) {
  const Corpus& corpus = TwoRowgroups();
  auto reader = OpenSeekable(
      std::make_shared<MemorySource>(corpus.buffer.data(), corpus.buffer.size()));
  ASSERT_NE(reader, nullptr);
  std::vector<double> out(reader->vector_count() * kVectorSize);

  CancelToken cancel;
  cancel.Cancel();
  OpContext cancelled;
  cancelled.cancel = &cancel;
  EXPECT_EQ(reader->TryDecodeAll(out.data(), &cancelled).code(),
            StatusCode::kCancelled);
  EXPECT_EQ(reader->TryDecodeVector(0, out.data(), &cancelled).code(),
            StatusCode::kCancelled);

  OpContext late;
  late.deadline = Deadline::After(std::chrono::nanoseconds(0));
  EXPECT_EQ(reader->TryDecodeAll(out.data(), &late).code(),
            StatusCode::kDeadlineExceeded);
}

// ---------------------------------------------------------------------------
// Fault sites: io.chunk_read on the consume path.

TEST(SeekableFaults, ChunkReadFaultSurfacesAndHeals) {
  FaultGuard guard;
  const Corpus& corpus = TwoRowgroups();
  auto reader = OpenSeekable(
      std::make_shared<MemorySource>(corpus.buffer.data(), corpus.buffer.size()));
  ASSERT_NE(reader, nullptr);
  std::vector<double> out(reader->vector_count() * kVectorSize);

  fault::FaultSpec spec;
  spec.code = StatusCode::kIo;
  spec.message = "injected chunk-read fault";
  fault::Arm("io.chunk_read", spec);
  EXPECT_EQ(reader->TryDecodeAll(out.data()).code(), StatusCode::kIo);
  fault::Disarm("io.chunk_read");

  // The fault injected nothing durable: the very next scan succeeds and is
  // byte-identical.
  ASSERT_TRUE(reader->TryDecodeAll(out.data()).ok());
  EXPECT_EQ(std::memcmp(out.data(), corpus.values.data(),
                        corpus.values.size() * sizeof(double)),
            0);
}

TEST(SeekableFaults, CacheEvictFaultDeclinesInsertWithoutCorruption) {
  FaultGuard guard;
  // Capacity of two full vectors in one shard, so the third insert must
  // evict — which is exactly where the fault fires.
  DecodedVectorCache cache(2 * kVectorSize * sizeof(double), 1);
  const auto entry = [](double fill) {
    std::vector<uint8_t> bytes(kVectorSize * sizeof(double));
    std::vector<double> values(kVectorSize, fill);
    std::memcpy(bytes.data(), values.data(), bytes.size());
    return std::make_shared<const std::vector<uint8_t>>(std::move(bytes));
  };
  cache.Insert(1, 0, entry(0.0));
  cache.Insert(1, 1, entry(1.0));
  ASSERT_EQ(cache.TotalStats().entries, 2u);

  fault::FaultSpec spec;
  spec.code = StatusCode::kResourceExhausted;
  fault::Arm("io.cache_evict", spec);
  cache.Insert(1, 2, entry(2.0));
  fault::Disarm("io.cache_evict");

  // The insert was declined (never half-applied): both residents intact,
  // the newcomer absent, invariants hold.
  const DecodedVectorCache::Stats stats = cache.TotalStats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_GE(stats.rejected, 1u);
  EXPECT_EQ(cache.Lookup(1, 2), nullptr);
  ASSERT_NE(cache.Lookup(1, 0), nullptr);
  ASSERT_NE(cache.Lookup(1, 1), nullptr);
  EXPECT_TRUE(cache.CheckInvariants());

  // With the fault gone the same insert evicts normally.
  cache.Insert(1, 2, entry(2.0));
  EXPECT_NE(cache.Lookup(1, 2), nullptr);
  EXPECT_EQ(cache.TotalStats().evictions, 1u);
  EXPECT_TRUE(cache.CheckInvariants());
}

// ---------------------------------------------------------------------------
// Corruption vs the cache: surfaces on first touch, never poisons.

TEST(SeekableCorruption, UncachedChunkCorruptionSurfacesOnFirstTouch) {
  const Corpus& corpus = TwoRowgroups();
  std::vector<uint8_t> buffer = corpus.buffer;  // Mutable copy.
  DecodedVectorCache cache(64ull << 20);
  SeekableReaderOptions options;
  options.cache = &cache;
  auto reader = OpenSeekable(
      std::make_shared<MemorySource>(buffer.data(), buffer.size()), options);
  ASSERT_NE(reader, nullptr);
  ASSERT_EQ(reader->rowgroup_count(), 2u);

  // Warm rowgroup 0 while the file is intact.
  std::vector<double> out(kRowgroupSize);
  ASSERT_TRUE(reader->TryDecodeRowgroup(0, out.data()).ok());
  const uint64_t inserts_after_rg0 = cache.TotalStats().inserts;
  ASSERT_GT(inserts_after_rg0, 0u);

  // Corrupt a payload byte inside rowgroup 1 — which no one has touched,
  // so nothing of it can be cached yet.
  const uint64_t rg1_begin = reader->index().rowgroup_offsets[1];
  const size_t victim = static_cast<size_t>(rg1_begin) + 64;
  ASSERT_LT(victim, buffer.size());
  buffer[victim] ^= 0xFF;

  // First touch of the damaged chunk: checksum mismatch, and repeatably so.
  const size_t rg1_first_vector = 1 * kRowgroupVectors;
  for (int attempt = 0; attempt < 3; ++attempt) {
    EXPECT_EQ(reader->TryDecodeRowgroup(1, out.data()).code(),
              StatusCode::kChecksumMismatch);
    EXPECT_EQ(reader->TryDecodeVector(rg1_first_vector, out.data()).code(),
              StatusCode::kChecksumMismatch);
  }
  // Nothing from the failed attempts entered the cache...
  EXPECT_EQ(cache.TotalStats().inserts, inserts_after_rg0);
  EXPECT_TRUE(cache.CheckInvariants());
  // ...and rowgroup 0 still serves, from cache, byte-identically.
  ASSERT_TRUE(reader->TryDecodeRowgroup(0, out.data()).ok());
  EXPECT_EQ(std::memcmp(out.data(), corpus.values.data(),
                        reader->RowgroupValueCount(0) * sizeof(double)),
            0);

  // Heal the byte: the chunk decodes correctly — proof no poisoned entry
  // was left behind to satisfy the read.
  buffer[victim] ^= 0xFF;
  ASSERT_TRUE(reader->TryDecodeRowgroup(1, out.data()).ok());
  EXPECT_EQ(std::memcmp(out.data(), corpus.values.data() + kRowgroupSize,
                        reader->RowgroupValueCount(1) * sizeof(double)),
            0);
}

TEST(SeekableCorruption, StructuralCorruptionPastChecksumNeverPoisons) {
  // Defeat the checksum on purpose (corrupt the chunk, then re-sign it and
  // the header) so the *structural* validation inside OpenRowgroupChunk is
  // what has to catch the damage — and prove that path inserts nothing.
  const Corpus& corpus = TwoRowgroups();
  std::vector<uint8_t> buffer = corpus.buffer;
  auto probe = OpenSeekable(
      std::make_shared<MemorySource>(buffer.data(), buffer.size()));
  ASSERT_NE(probe, nullptr);
  const auto& index = probe->index();
  ASSERT_EQ(index.rowgroup_offsets.size(), 2u);
  const uint64_t rg1_begin = index.rowgroup_offsets[1];
  const uint64_t rg1_end = buffer.size();

  // Zero the rowgroup's vector-offset table region (just past its 8-byte
  // RowgroupHeader): structurally invalid, checksum-valid after re-signing.
  for (size_t i = 0; i < 16; ++i) buffer[rg1_begin + 8 + i] = 0xEE;
  const uint64_t new_checksum =
      Checksum64(buffer.data() + rg1_begin, rg1_end - rg1_begin);
  const size_t checksums_at = 24 + index.rowgroup_offsets.size() * 8;
  std::memcpy(buffer.data() + checksums_at + 1 * 8, &new_checksum, 8);
  const size_t header_checksum_at = index.payload_begin - 8;
  const uint64_t new_header_checksum =
      Checksum64(buffer.data(), header_checksum_at);
  std::memcpy(buffer.data() + header_checksum_at, &new_header_checksum, 8);

  DecodedVectorCache cache(64ull << 20);
  SeekableReaderOptions options;
  options.cache = &cache;
  auto reader = OpenSeekable(
      std::make_shared<MemorySource>(buffer.data(), buffer.size()), options);
  ASSERT_NE(reader, nullptr);

  std::vector<double> out(kRowgroupSize);
  ASSERT_TRUE(reader->TryDecodeRowgroup(0, out.data()).ok());
  const uint64_t inserts_after_rg0 = cache.TotalStats().inserts;

  EXPECT_EQ(reader->TryDecodeRowgroup(1, out.data()).code(),
            StatusCode::kCorrupt);
  EXPECT_EQ(cache.TotalStats().inserts, inserts_after_rg0);
  EXPECT_TRUE(cache.CheckInvariants());
}

// ---------------------------------------------------------------------------
// Cache capacity bounds and LRU eviction order.

std::shared_ptr<const std::vector<uint8_t>> CacheEntry(size_t bytes,
                                                       uint8_t fill) {
  return std::make_shared<const std::vector<uint8_t>>(bytes, fill);
}

TEST(DecodedVectorCache, StaysWithinCapacityWithLruEvictionOrder) {
  const size_t entry_bytes = kVectorSize * sizeof(double);
  DecodedVectorCache cache(4 * entry_bytes, 1);  // One shard: global order.
  for (uint64_t v = 0; v < 6; ++v) {
    cache.Insert(9, v, CacheEntry(entry_bytes, static_cast<uint8_t>(v)));
    EXPECT_TRUE(cache.CheckInvariants());
    EXPECT_LE(cache.TotalStats().bytes, 4 * entry_bytes);
  }
  // 6 inserts into room for 4: vectors 0 and 1 (the least recent) are gone.
  DecodedVectorCache::Stats stats = cache.TotalStats();
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(cache.Lookup(9, 0), nullptr);
  EXPECT_EQ(cache.Lookup(9, 1), nullptr);
  ASSERT_NE(cache.Lookup(9, 2), nullptr);

  // MRU-first order after that Lookup(2): 2, then 5, 4, 3.
  std::vector<DecodedVectorCache::Key> keys = cache.ShardKeysMruFirst(0);
  ASSERT_EQ(keys.size(), 4u);
  EXPECT_EQ(keys[0].vector, 2u);
  EXPECT_EQ(keys[1].vector, 5u);
  EXPECT_EQ(keys[2].vector, 4u);
  EXPECT_EQ(keys[3].vector, 3u);

  // The next insert evicts the LRU (vector 3), not the recently-touched 2.
  cache.Insert(9, 6, CacheEntry(entry_bytes, 6));
  EXPECT_EQ(cache.Lookup(9, 3), nullptr);
  ASSERT_NE(cache.Lookup(9, 2), nullptr);
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST(DecodedVectorCache, ZeroCapacityCachesNothing) {
  DecodedVectorCache cache(0);
  cache.Insert(1, 0, CacheEntry(64, 1));
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  const DecodedVectorCache::Stats stats = cache.TotalStats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST(DecodedVectorCache, OversizedAndNullEntriesAreRejected) {
  DecodedVectorCache cache(1024, 1);
  cache.Insert(1, 0, nullptr);
  cache.Insert(1, 1, CacheEntry(0, 0));
  cache.Insert(1, 2, CacheEntry(4096, 0));  // Larger than the whole shard.
  const DecodedVectorCache::Stats stats = cache.TotalStats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_GE(stats.rejected, 3u);
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST(DecodedVectorCache, ReinsertRefreshesRecencyKeepingFirstValue) {
  const size_t entry_bytes = 128;
  DecodedVectorCache cache(4 * entry_bytes, 1);
  cache.Insert(1, 0, CacheEntry(entry_bytes, 0xAA));
  cache.Insert(1, 1, CacheEntry(entry_bytes, 0xBB));
  // Concurrent decoders race to insert the same key: first write wins, the
  // loser's bytes are dropped (both decoded the same verified chunk, so
  // the values are identical anyway — this just pins the accounting).
  cache.Insert(1, 0, CacheEntry(entry_bytes, 0xCC));
  auto hit = cache.Lookup(1, 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ((*hit)[0], 0xAA);
  EXPECT_EQ(cache.TotalStats().entries, 2u);
  // But the re-insert refreshed recency: key 1 is now the LRU.
  std::vector<DecodedVectorCache::Key> keys = cache.ShardKeysMruFirst(0);
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys.back().vector, 1u);
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST(SeekableCache, ScanStaysWithinTinyBudget) {
  // A cache an order of magnitude smaller than the column: scans keep
  // evicting, the budget holds at every step, and answers stay identical.
  const Corpus& corpus = TwoRowgroups();
  const size_t capacity = 8 * kVectorSize * sizeof(double);
  DecodedVectorCache cache(capacity, 1);
  SeekableReaderOptions options;
  options.cache = &cache;
  auto reader = OpenSeekable(
      std::make_shared<MemorySource>(corpus.buffer.data(), corpus.buffer.size()),
      options);
  ASSERT_NE(reader, nullptr);
  std::vector<double> out(reader->vector_count() * kVectorSize);
  for (int pass = 0; pass < 3; ++pass) {
    ASSERT_TRUE(reader->TryDecodeAll(out.data()).ok());
    EXPECT_EQ(std::memcmp(out.data(), corpus.values.data(),
                          corpus.values.size() * sizeof(double)),
              0);
    EXPECT_LE(cache.TotalStats().bytes, capacity);
    EXPECT_TRUE(cache.CheckInvariants());
  }
  EXPECT_GT(cache.TotalStats().evictions, 0u);
}

// ---------------------------------------------------------------------------
// Cache-off determinism against the committed golden files (satellite: a
// capacity-0 cache must not change one byte or one Status).

TEST(SeekableGolden, CacheOffScansAreByteIdenticalOnGoldenFiles) {
  for (const char* name : {"alp_small.alp", "rd_small.alp", "alp_small_v2.alp"}) {
    SCOPED_TRACE(name);
    const std::string path = std::string(ALP_GOLDEN_DIR) + "/" + name;
    const auto bytes = ReadFileBytes(path);
    ASSERT_TRUE(bytes.has_value()) << path;

    auto oracle = ColumnReader<double>::Open(bytes->data(), bytes->size());
    ASSERT_TRUE(oracle.ok());
    std::vector<double> expect(oracle->vector_count() * kVectorSize);
    const Status oracle_status = oracle->TryDecodeAll(expect.data());
    ASSERT_TRUE(oracle_status.ok());

    DecodedVectorCache cache(0);  // Capacity zero: caching fully disabled.
    SeekableReaderOptions options;
    options.cache = &cache;
    auto mmap = MmapSource::Open(path);
    ASSERT_TRUE(mmap.ok());
    auto reader = OpenSeekable(*mmap, options);
    ASSERT_NE(reader, nullptr);

    std::vector<double> first(expect.size());
    std::vector<double> second(expect.size());
    const Status s1 = reader->TryDecodeAll(first.data());
    const Status s2 = reader->TryDecodeAll(second.data());
    EXPECT_EQ(s1.code(), oracle_status.code());
    EXPECT_EQ(s2.code(), oracle_status.code());
    EXPECT_EQ(std::memcmp(first.data(), expect.data(),
                          oracle->value_count() * sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(second.data(), expect.data(),
                          oracle->value_count() * sizeof(double)),
              0);
    // Nothing was cached, counted, or retained.
    const DecodedVectorCache::Stats stats = cache.TotalStats();
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_EQ(stats.inserts, 0u);
    EXPECT_EQ(stats.bytes, 0u);
  }
}

// ---------------------------------------------------------------------------
// Concurrency: shared cache under 1/2/4/8 readers, cancellation mid-prefetch.

TEST(SeekableConcurrency, ConcurrentReadersShareOneCacheConsistently) {
  const Corpus& corpus = TwoRowgroups();
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    // Small single-shard cache: every thread contends on one LRU list and
    // evictions happen constantly — the worst case for consistency.
    const size_t capacity = 16 * kVectorSize * sizeof(double);
    DecodedVectorCache cache(capacity, 1);
    SeekableReaderOptions options;
    options.cache = &cache;
    auto reader = OpenSeekable(
        std::make_shared<MemorySource>(corpus.buffer.data(),
                                       corpus.buffer.size()),
        options);
    ASSERT_NE(reader, nullptr);

    std::atomic<int> mismatches{0};
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        std::mt19937_64 rng(1000 + t);
        std::vector<double> got(kRowgroupSize);
        for (int i = 0; i < 300; ++i) {
          const size_t v = rng() % reader->vector_count();
          const unsigned len = reader->VectorLength(v);
          if (!reader->TryDecodeVector(v, got.data()).ok() ||
              std::memcmp(got.data(),
                          corpus.values.data() + v * kVectorSize,
                          len * sizeof(double)) != 0) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
        // One full rowgroup read per thread for the multi-vector path.
        const size_t rg = t % reader->rowgroup_count();
        if (!reader->TryDecodeRowgroup(rg, got.data()).ok() ||
            std::memcmp(got.data(),
                        corpus.values.data() + rg * kRowgroupSize,
                        reader->RowgroupValueCount(rg) * sizeof(double)) != 0) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& worker : workers) worker.join();
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_LE(cache.TotalStats().bytes, capacity);
    EXPECT_TRUE(cache.CheckInvariants());
  }
}

#if ALP_OBS
TEST(SeekableConcurrency, RegistryCountersMatchCacheStatsUnderContention) {
  // The registry's io.cache.* counters and DecodedVectorCache::Stats are
  // maintained by independent mechanisms (sharded global atomics vs.
  // per-shard locked tallies). This proves they agree *exactly* — not
  // approximately — after 8 readers hammer one small cache with mixed
  // hit / miss / evict traffic. A drifting pair would make the Prometheus
  // export silently disagree with Server::cache_stats().
  const Corpus& corpus = TwoRowgroups();
  const bool was_enabled = obs::Enabled();
  obs::SetEnabled(true);

  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  obs::Counter& hit = registry.GetCounter("io.cache.hit");
  obs::Counter& miss = registry.GetCounter("io.cache.miss");
  obs::Counter& evict = registry.GetCounter("io.cache.evict");
  obs::Counter& insert = registry.GetCounter("io.cache.insert");
  const uint64_t hit0 = hit.Total();
  const uint64_t miss0 = miss.Total();
  const uint64_t evict0 = evict.Total();
  const uint64_t insert0 = insert.Total();

  {
    // Small enough to evict constantly, single shard for maximal
    // contention on one LRU list.
    const size_t capacity = 12 * kVectorSize * sizeof(double);
    DecodedVectorCache cache(capacity, 1);
    SeekableReaderOptions options;
    options.cache = &cache;
    auto reader = OpenSeekable(
        std::make_shared<MemorySource>(corpus.buffer.data(),
                                       corpus.buffer.size()),
        options);
    ASSERT_NE(reader, nullptr);

    std::vector<std::thread> workers;
    std::atomic<int> failures{0};
    for (unsigned t = 0; t < 8; ++t) {
      workers.emplace_back([&, t] {
        std::mt19937_64 rng(7000 + t);
        std::vector<double> got(kVectorSize);
        for (int i = 0; i < 400; ++i) {
          // Skewed access: a hot front half (hits) plus a uniform tail
          // (misses + evictions).
          const size_t range = i % 2 == 0 ? reader->vector_count() / 2 + 1
                                          : reader->vector_count();
          const size_t v = rng() % range;
          if (!reader->TryDecodeVector(v, got.data()).ok()) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& worker : workers) worker.join();
    EXPECT_EQ(failures.load(), 0);

    const DecodedVectorCache::Stats stats = cache.TotalStats();
    // Sanity: the workload really did mix all three kinds of traffic.
    EXPECT_GT(stats.hits, 0u);
    EXPECT_GT(stats.misses, 0u);
    EXPECT_GT(stats.evictions, 0u);
    // Exact agreement, counter by counter.
    EXPECT_EQ(hit.Total() - hit0, stats.hits);
    EXPECT_EQ(miss.Total() - miss0, stats.misses);
    EXPECT_EQ(evict.Total() - evict0, stats.evictions);
    EXPECT_EQ(insert.Total() - insert0, stats.inserts);
    EXPECT_TRUE(cache.CheckInvariants());
  }

  obs::SetEnabled(was_enabled);
}
#endif  // ALP_OBS

TEST(SeekableConcurrency, TwoColumnsNeverAliasInASharedCache) {
  // Distinct readers get distinct cache-key namespaces even over identical
  // bytes: warming one column must not let the other hit.
  const Corpus& corpus = AlpSmall();
  DecodedVectorCache cache(64ull << 20);
  SeekableReaderOptions options;
  options.cache = &cache;
  auto a = OpenSeekable(std::make_shared<MemorySource>(corpus.buffer.data(),
                                                       corpus.buffer.size()),
                        options);
  auto b = OpenSeekable(std::make_shared<MemorySource>(corpus.buffer.data(),
                                                       corpus.buffer.size()),
                        options);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a->column_id(), b->column_id());

  std::vector<double> out(a->vector_count() * kVectorSize);
  ASSERT_TRUE(a->TryDecodeAll(out.data()).ok());
  const uint64_t misses_after_a = cache.TotalStats().misses;
  ASSERT_TRUE(b->TryDecodeAll(out.data()).ok());
  // b's pass saw only misses of its own: a's warm entries were invisible.
  EXPECT_GT(cache.TotalStats().misses, misses_after_a);
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST(SeekableConcurrency, CancellationMidScanLeavesCacheConsistent) {
  const Corpus& corpus = TwoRowgroups();
  ThreadPool pool(2);
  DecodedVectorCache cache(64ull << 20);
  SeekableReaderOptions options;
  options.cache = &cache;
  options.prefetch_pool = &pool;
  options.prefetch_rowgroups = 2;
  auto reader = OpenSeekable(
      std::make_shared<MemorySource>(corpus.buffer.data(), corpus.buffer.size()),
      options);
  ASSERT_NE(reader, nullptr);

  // TwoRowgroups has 104 vectors; cancel points span first touch, early in
  // rowgroup 0, and right around the rowgroup-1 prefetch boundary.
  for (int cancel_after : {0, 1, 17, 99}) {
    SCOPED_TRACE("cancel_after=" + std::to_string(cancel_after));
    cache.Clear();
    CancelToken cancel;
    OpContext ctx;
    ctx.cancel = &cancel;
    int visits = 0;
    const Status s = reader->Scan(
        [&](size_t, const double*, unsigned) {
          if (++visits > cancel_after) cancel.Cancel();
          return Status::Ok();
        },
        &ctx);
    // Cancelling from inside the visitor is observed at the next vector
    // checkpoint — mid-prefetch, with background chunk reads in flight.
    EXPECT_EQ(s.code(), StatusCode::kCancelled);
    EXPECT_TRUE(cache.CheckInvariants());

    // A fresh, uncancelled scan completes and is byte-identical: whatever
    // the cancelled scan left in the cache is valid.
    std::vector<double> out(reader->vector_count() * kVectorSize);
    ASSERT_TRUE(reader->TryDecodeAll(out.data()).ok());
    EXPECT_EQ(std::memcmp(out.data(), corpus.values.data(),
                          corpus.values.size() * sizeof(double)),
              0);
    EXPECT_TRUE(cache.CheckInvariants());
  }
}

// ---------------------------------------------------------------------------
// Prefetcher degradation: saturation and shutdown must never deadlock.

TEST(SeekablePrefetch, SaturatedPoolDegradesToSynchronousReads) {
  const Corpus& corpus = TwoRowgroups();
  ThreadPool pool(1);
  // Occupy the lone worker so nothing submitted can run, and set the queue
  // limit to zero so TrySubmit always refuses: every prefetch must fall
  // back to a synchronous read — and the scan must still finish.
  std::mutex gate;
  gate.lock();
  {
    TaskGroup blocker(&pool);
    blocker.Submit([&gate] { std::lock_guard<std::mutex> hold(gate); });

    SeekableReaderOptions options;
    options.prefetch_pool = &pool;
    options.prefetch_rowgroups = 4;
    options.prefetch_queue_limit = 0;
    auto reader = OpenSeekable(
        std::make_shared<MemorySource>(corpus.buffer.data(),
                                       corpus.buffer.size()),
        options);
    ASSERT_NE(reader, nullptr);
    std::vector<double> out(reader->vector_count() * kVectorSize);
    ASSERT_TRUE(reader->TryDecodeAll(out.data()).ok());
    EXPECT_EQ(std::memcmp(out.data(), corpus.values.data(),
                          corpus.values.size() * sizeof(double)),
              0);
    gate.unlock();
    blocker.Wait();
  }
}

TEST(SeekablePrefetch, ShutDownPoolIsRefusedNotDeadlocked) {
  const Corpus& corpus = TwoRowgroups();
  ThreadPool pool(2);
  pool.Shutdown();  // Every TrySubmit now refuses.
  SeekableReaderOptions options;
  options.prefetch_pool = &pool;
  auto reader = OpenSeekable(
      std::make_shared<MemorySource>(corpus.buffer.data(), corpus.buffer.size()),
      options);
  ASSERT_NE(reader, nullptr);
  std::vector<double> out(reader->vector_count() * kVectorSize);
  ASSERT_TRUE(reader->TryDecodeAll(out.data()).ok());
  EXPECT_EQ(std::memcmp(out.data(), corpus.values.data(),
                        corpus.values.size() * sizeof(double)),
            0);
}

TEST(SeekablePrefetch, ConcurrentShutdownMidScanCompletesCleanly) {
  // A pool shut down while a prefetching scan is mid-flight: accepted
  // tasks drain, later submissions refuse into synchronous reads, and the
  // scan finishes byte-identical. Run a few rounds to vary the interleave
  // (TSan executes this with full race checking).
  const Corpus& corpus = TwoRowgroups();
  for (int round = 0; round < 4; ++round) {
    auto pool = std::make_unique<ThreadPool>(2);
    SeekableReaderOptions options;
    options.prefetch_pool = pool.get();
    options.prefetch_rowgroups = 2;
    auto reader = OpenSeekable(
        std::make_shared<MemorySource>(corpus.buffer.data(),
                                       corpus.buffer.size()),
        options);
    ASSERT_NE(reader, nullptr);
    std::atomic<bool> scan_ok{false};
    std::thread scanner([&] {
      std::vector<double> out(reader->vector_count() * kVectorSize);
      const Status s = reader->TryDecodeAll(out.data());
      scan_ok.store(s.ok() &&
                    std::memcmp(out.data(), corpus.values.data(),
                                corpus.values.size() * sizeof(double)) == 0);
    });
    pool->Shutdown();
    scanner.join();
    EXPECT_TRUE(scan_ok.load()) << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// Out-of-core proof: a column larger than the scanning process's address
// budget, written rowgroup-at-a-time, scanned chunk-at-a-time.
//
// CI runs Prepare unconstrained, then ScanByteIdentical in a separate
// process under `ulimit -v` with a budget a quarter of the file size.
// Neither runs without ALP_LARGE_FILE_DIR.

/// Streams a deterministic high-precision column of \p values values to
/// \p path, holding at most one raw rowgroup plus one compressed segment
/// in memory. Returns the XXH64 of the raw value bytes (the scan's
/// byte-identity oracle).
uint64_t WriteLargeColumn(const std::string& path, uint64_t values) {
  const size_t rowgroups =
      static_cast<size_t>((values + kRowgroupSize - 1) / kRowgroupSize);
  const std::string payload_path = path + ".payload";
  std::FILE* payload = std::fopen(payload_path.c_str(), "wb");
  EXPECT_NE(payload, nullptr);

  std::vector<uint64_t> sizes(rowgroups);       // Padded segment sizes.
  std::vector<uint64_t> checksums(rowgroups);   // Over the padded segment.
  std::vector<VectorStats> stats;
  Checksum64Stream data_checksum;
  static const uint8_t kPad[8] = {0};
  for (size_t rg = 0; rg < rowgroups; ++rg) {
    const uint64_t begin = uint64_t{rg} * kRowgroupSize;
    const size_t len =
        static_cast<size_t>(std::min<uint64_t>(kRowgroupSize, values - begin));
    // Unique data per rowgroup, reproducible by the scanner via the seed.
    const std::vector<double> raw = HighPrecisionData(begin, len);
    data_checksum.Update(raw.data(), len * sizeof(double));
    std::vector<uint8_t> segment =
        internal::CompressRowgroupSegment<double>(raw.data(), len, {}, &stats,
                                                  nullptr);
    const size_t padding = (8 - segment.size() % 8) % 8;
    EXPECT_EQ(std::fwrite(segment.data(), 1, segment.size(), payload),
              segment.size());
    if (padding > 0) {
      EXPECT_EQ(std::fwrite(kPad, 1, padding, payload), padding);
    }
    Checksum64Stream rg_checksum;
    rg_checksum.Update(segment.data(), segment.size());
    rg_checksum.Update(kPad, padding);
    sizes[rg] = segment.size() + padding;
    checksums[rg] = rg_checksum.Finish();
  }
  EXPECT_EQ(std::fclose(payload), 0);

  // Assemble the index region in memory (it is what the reader keeps
  // resident, a few MB at most) and prepend it to the streamed payload.
  const size_t total_vectors =
      static_cast<size_t>((values + kVectorSize - 1) / kVectorSize);
  EXPECT_EQ(stats.size(), total_vectors);
  const size_t offsets_at = 24;
  const size_t checksums_at = offsets_at + rowgroups * 8;
  const size_t stats_at = checksums_at + rowgroups * 8;
  const size_t header_checksum_at = stats_at + total_vectors * sizeof(VectorStats);
  const size_t payload_begin = header_checksum_at + 8;

  std::vector<uint8_t> index(payload_begin, 0);
  const uint32_t magic = 0x43504C41;  // "ALPC".
  std::memcpy(index.data(), &magic, 4);
  index[4] = 3;  // version
  index[5] = 0;  // type: double
  std::memcpy(index.data() + 8, &values, 8);
  const uint32_t rg_count32 = static_cast<uint32_t>(rowgroups);
  std::memcpy(index.data() + 16, &rg_count32, 4);
  uint64_t offset = payload_begin;
  for (size_t rg = 0; rg < rowgroups; ++rg) {
    std::memcpy(index.data() + offsets_at + rg * 8, &offset, 8);
    std::memcpy(index.data() + checksums_at + rg * 8, &checksums[rg], 8);
    offset += sizes[rg];
  }
  std::memcpy(index.data() + stats_at, stats.data(),
              total_vectors * sizeof(VectorStats));
  const uint64_t header_checksum = Checksum64(index.data(), header_checksum_at);
  std::memcpy(index.data() + header_checksum_at, &header_checksum, 8);

  std::FILE* out = std::fopen(path.c_str(), "wb");
  EXPECT_NE(out, nullptr);
  EXPECT_EQ(std::fwrite(index.data(), 1, index.size(), out), index.size());
  std::FILE* in = std::fopen(payload_path.c_str(), "rb");
  EXPECT_NE(in, nullptr);
  std::vector<uint8_t> copy_buffer(1 << 20);
  size_t n;
  while ((n = std::fread(copy_buffer.data(), 1, copy_buffer.size(), in)) > 0) {
    EXPECT_EQ(std::fwrite(copy_buffer.data(), 1, n, out), n);
  }
  std::fclose(in);
  EXPECT_EQ(std::fclose(out), 0);
  std::remove(payload_path.c_str());
  return data_checksum.Finish();
}

const char* LargeFileDir() { return std::getenv("ALP_LARGE_FILE_DIR"); }

TEST(LargeFile, Prepare) {
  const char* dir = LargeFileDir();
  if (dir == nullptr) GTEST_SKIP() << "set ALP_LARGE_FILE_DIR to enable";
  uint64_t values = 16 * uint64_t{kRowgroupSize} + 4321;
  if (const char* env = std::getenv("ALP_LARGE_FILE_VALUES")) {
    values = std::strtoull(env, nullptr, 10);
    ASSERT_GT(values, 0u);
  }
  const std::string path = std::string(dir) + "/large_column.alp";
  const uint64_t checksum = WriteLargeColumn(path, values);
  // The expected raw-data checksum travels beside the file so the scan
  // process (which must not regenerate 1GB of data under its rlimit...
  // actually regeneration is cheap, but the contract is byte identity with
  // what the WRITER hashed) can verify without holding anything.
  const std::string expect_path = path + ".expect";
  std::FILE* f = std::fopen(expect_path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(&checksum, 1, 8, f), 8u);
  ASSERT_EQ(std::fwrite(&values, 1, 8, f), 8u);
  ASSERT_EQ(std::fclose(f), 0);
}

TEST(LargeFile, ScanByteIdentical) {
  const char* dir = LargeFileDir();
  if (dir == nullptr) GTEST_SKIP() << "set ALP_LARGE_FILE_DIR to enable";
  const std::string path = std::string(dir) + "/large_column.alp";
  uint64_t expect_checksum = 0, expect_values = 0;
  {
    std::FILE* f = std::fopen((path + ".expect").c_str(), "rb");
    ASSERT_NE(f, nullptr) << "run LargeFile.Prepare first";
    ASSERT_EQ(std::fread(&expect_checksum, 1, 8, f), 8u);
    ASSERT_EQ(std::fread(&expect_values, 1, 8, f), 8u);
    std::fclose(f);
  }

  // PreadSource on purpose: mmap would charge the whole file against the
  // CI job's `ulimit -v` budget, defeating the out-of-core point. Peak
  // memory here is the index region + the prefetch window of chunks + the
  // decoded-vector cache budget.
  auto source = PreadSource::Open(path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();

  ThreadPool pool(2);
  DecodedVectorCache cache(16ull << 20);
  SeekableReaderOptions options;
  options.cache = &cache;
  options.prefetch_pool = &pool;
  options.prefetch_rowgroups = 2;
  auto reader = OpenSeekable(*source, options);
  ASSERT_NE(reader, nullptr);
  ASSERT_EQ(reader->value_count(), expect_values);

  Checksum64Stream got_checksum;
  uint64_t visited_values = 0;
  const Status s = reader->Scan([&](size_t, const double* values,
                                    unsigned len) {
    got_checksum.Update(values, size_t{len} * sizeof(double));
    visited_values += len;
    return Status::Ok();
  });
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(visited_values, expect_values);
  EXPECT_EQ(got_checksum.Finish(), expect_checksum);
  EXPECT_TRUE(cache.CheckInvariants());

  // Random point lookups land anywhere in the file without a full read:
  // re-derive the expected values from the writer's per-rowgroup seeds.
  std::mt19937_64 rng(77);
  std::vector<double> got(kVectorSize);
  for (int i = 0; i < 32; ++i) {
    const size_t v = rng() % reader->vector_count();
    const unsigned len = reader->VectorLength(v);
    ASSERT_TRUE(reader->TryDecodeVector(v, got.data()).ok());
    const size_t rg = v / kRowgroupVectors;
    const uint64_t rg_begin = uint64_t{rg} * kRowgroupSize;
    const size_t rg_len = static_cast<size_t>(
        std::min<uint64_t>(kRowgroupSize, expect_values - rg_begin));
    const std::vector<double> raw = HighPrecisionData(rg_begin, rg_len);
    const size_t in_rg = (v % kRowgroupVectors) * kVectorSize;
    ASSERT_EQ(std::memcmp(got.data(), raw.data() + in_rg,
                          len * sizeof(double)),
              0)
        << "vector " << v;
  }
}

}  // namespace
}  // namespace alp
