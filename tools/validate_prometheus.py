#!/usr/bin/env python3
"""Lint Prometheus text-exposition snapshots.

Usage: validate_prometheus.py <metrics.prom>...

Checks the subset of the exposition format that alp's exporter
(src/obs/export.cc) promises to produce, so CI can gate `alp stats --prom`,
the server's periodic snapshots, and `bench_serving_load --metrics-out=`
artifacts. Standard library only, so it runs on a bare runner.

Rules enforced per file:
  1. Every line is a `# TYPE <name> <counter|gauge|histogram>` comment or a
     `<name>[{labels}] <value>` sample (a trailing newline is required).
  2. Metric and label names match the Prometheus charsets; label values are
     double-quoted with only `\\"`, `\\\\` and `\\n` escapes — an invalid
     escape sequence (or a raw backslash the exporter failed to escape) is
     called out explicitly.
  3. Every sample belongs to a family declared by exactly one TYPE line
     (counter samples strip `_total`, histogram samples strip
     `_bucket`/`_sum`/`_count`).
  4. Counter and histogram sample values are non-negative and finite;
     gauges are finite.
  5. Histogram buckets are cumulative (non-decreasing in `le` order), the
     `le="+Inf"` bucket equals `_count`, and `_sum`/`_count` are present,
     all checked per label set.
"""

import math
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
TYPE_LINE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$")
# One label: name="value" with the three allowed escapes.
LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\"|\\\\|\\n)*)"')
# A backslash starting anything but the three legal escapes — the signature
# of an exporter that emitted a raw label value.
INVALID_ESCAPE = re.compile(r'\\(?![\\"n])')


def fail(path, lineno, msg):
    where = f"{path}:{lineno}" if lineno else path
    print(f"{where}: FAIL: {msg}")
    return False


def parse_labels(path, lineno, block):
    """Parses `k="v",k2="v2"` into a dict, or None on malformed input."""
    labels = {}
    pos = 0
    while pos < len(block):
        m = LABEL.match(block, pos)
        if not m:
            bad = INVALID_ESCAPE.search(block, pos)
            if bad:
                fail(
                    path,
                    lineno,
                    f"invalid escape sequence at ...{block[bad.start():]!r} "
                    '(label values allow only \\\\, \\" and \\n)',
                )
            else:
                fail(path, lineno, f"malformed label block at ...{block[pos:]!r}")
            return None
        name = m.group(1)
        if name in labels:
            fail(path, lineno, f"duplicate label {name!r}")
            return None
        labels[name] = m.group(2)
        pos = m.end()
        if pos < len(block):
            if block[pos] != ",":
                fail(path, lineno, f"expected ',' between labels in {block!r}")
                return None
            pos += 1
    return labels


def family_of(name, types):
    """Maps a sample name to its declared family, honoring the suffix
    conventions: counters carry _total, histogram series carry
    _bucket/_sum/_count. Returns (family, type) or (None, None)."""
    if name in types:
        return name, types[name]
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base, "histogram"
    return None, None


def validate_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        return fail(path, 0, f"cannot read: {e}")
    if not text:
        # An empty registry exports an empty exposition — legal, and exactly
        # what a fresh process (or an ALP_OBS=OFF build) scrapes as.
        print(f"{path}: OK (empty exposition)")
        return True
    if not text.endswith("\n"):
        return fail(path, 0, "missing trailing newline")

    types = {}  # family -> type
    # histograms[family][labels-without-le] = {"buckets": [(le, v)...],
    #                                          "sum": v, "count": v}
    histograms = {}
    samples = 0
    ok = True

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            ok = fail(path, lineno, "blank line")
            continue
        if line.startswith("#"):
            m = TYPE_LINE.match(line)
            if not m:
                ok = fail(path, lineno, f"malformed comment {line!r}")
                continue
            name, mtype = m.group(1), m.group(2)
            if name in types:
                ok = fail(path, lineno, f"duplicate TYPE line for {name}")
                continue
            types[name] = mtype
            continue

        # Sample line: name[{labels}] value
        m = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})? (\S+)$", line)
        if not m:
            ok = fail(path, lineno, f"malformed sample {line!r}")
            continue
        name, label_block, value_text = m.group(1), m.group(3), m.group(4)
        labels = parse_labels(path, lineno, label_block) if label_block else {}
        if labels is None:
            ok = False
            continue
        try:
            value = float(value_text)
        except ValueError:
            ok = fail(path, lineno, f"non-numeric value {value_text!r}")
            continue
        if not math.isfinite(value):
            ok = fail(path, lineno, f"non-finite value {value_text!r}")
            continue

        family, mtype = family_of(name, types)
        if family is None:
            ok = fail(path, lineno, f"sample {name} has no preceding TYPE line")
            continue
        if mtype in ("counter", "histogram") and value < 0:
            ok = fail(path, lineno, f"{mtype} sample {name} is negative")
            continue
        if mtype == "counter" and not name.endswith("_total"):
            ok = fail(path, lineno, f"counter sample {name} lacks _total suffix")
            continue
        samples += 1

        if mtype == "histogram":
            series = histograms.setdefault(family, {})
            key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            entry = series.setdefault(key, {"buckets": [], "sum": None, "count": None})
            if name.endswith("_bucket"):
                if "le" not in labels:
                    ok = fail(path, lineno, f"{name} bucket without le label")
                    continue
                entry["buckets"].append((labels["le"], value))
            elif name.endswith("_sum"):
                entry["sum"] = value
            elif name.endswith("_count"):
                entry["count"] = value

    for family, series in histograms.items():
        for key, entry in series.items():
            label_str = ",".join(f'{k}="{v}"' for k, v in key) or "(no labels)"
            where = f"{family}{{{label_str}}}"
            if entry["sum"] is None or entry["count"] is None:
                ok = fail(path, 0, f"{where} missing _sum or _count")
                continue
            buckets = entry["buckets"]
            if not buckets or buckets[-1][0] != "+Inf":
                ok = fail(path, 0, f"{where} missing le=\"+Inf\" bucket")
                continue
            values = [v for _, v in buckets]
            if any(b > a for b, a in zip(values, values[1:])):
                ok = fail(path, 0, f"{where} buckets are not cumulative: {values}")
                continue
            if values[-1] != entry["count"]:
                ok = fail(
                    path,
                    0,
                    f"{where} le=\"+Inf\" bucket {values[-1]} != _count {entry['count']}",
                )
                continue

    if ok:
        print(f"{path}: OK ({len(types)} families, {samples} samples)")
    return ok


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip())
        return 2
    ok = all([validate_file(p) for p in argv[1:]])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
