#!/usr/bin/env python3
"""Validate bench JSON reports against the alp-bench-v1 schema.

Usage: validate_bench_json.py <report.json>...

Checks the rules documented in docs/BENCH_SCHEMA.md and exits non-zero if
any file fails. Standard library only, so CI can run it on a bare runner.
"""

import json
import math
import sys

REQUIRED_STR = ("dataset", "scheme", "metric", "unit")
ALLOWED_FIELDS = set(REQUIRED_STR) | {"value", "threads", "kernel_tier", "tenant"}
KERNEL_TIERS = ("scalar", "neon", "avx2", "avx512")
# Hardware-counter availability tokens (obs/perf_counters.h).
PERF_STATUSES = (
    "available",
    "compiled-out",
    "unsupported-platform",
    "forbidden",
    "no-hardware",
)
# Canonical units for the hardware-counter metric suffixes, so cross-bench
# perf records stay comparable (docs/BENCH_SCHEMA.md).
PERF_METRIC_UNITS = {
    "_ipc": "instructions/cycle",
    "_cache_misses_per_tuple": "misses/tuple",
    "_branch_misses_per_tuple": "misses/tuple",
}


def fail(path, msg):
    print(f"{path}: FAIL: {msg}")
    return False


def validate_record(path, i, rec):
    where = f"records[{i}]"
    if not isinstance(rec, dict):
        return fail(path, f"{where} is not an object")
    unknown = set(rec) - ALLOWED_FIELDS
    if unknown:
        return fail(path, f"{where} has unknown fields {sorted(unknown)}")
    for field in REQUIRED_STR:
        if not isinstance(rec.get(field), str) or not rec[field]:
            return fail(path, f"{where}.{field} missing or not a non-empty string")
    value = rec.get("value")
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return fail(path, f"{where}.value missing or not a number")
    if not math.isfinite(value):
        return fail(path, f"{where}.value is not finite")
    if "threads" in rec:
        threads = rec["threads"]
        if isinstance(threads, bool) or not isinstance(threads, int) or threads < 1:
            return fail(path, f"{where}.threads must be an integer >= 1")
    if "kernel_tier" in rec and rec["kernel_tier"] not in KERNEL_TIERS:
        return fail(
            path,
            f"{where}.kernel_tier must be one of {KERNEL_TIERS}, "
            f"got {rec['kernel_tier']!r}",
        )
    if "tenant" in rec:
        tenant = rec["tenant"]
        if not isinstance(tenant, str) or not tenant:
            return fail(path, f"{where}.tenant must be a non-empty string")
    for suffix, unit in PERF_METRIC_UNITS.items():
        if rec["metric"].endswith(suffix) and rec["unit"] != unit:
            return fail(
                path,
                f"{where}: metric {rec['metric']!r} must use unit {unit!r}, "
                f"got {rec['unit']!r}",
            )
    return True


def validate_perf(path, perf):
    """The optional top-level "perf" object: hardware-counter probe result
    recorded by the emitting bench (bench_common.h JsonReport)."""
    if not isinstance(perf, dict):
        return fail(path, "top-level perf is not an object")
    unknown = set(perf) - {"available", "status"}
    if unknown:
        return fail(path, f"perf has unknown fields {sorted(unknown)}")
    if not isinstance(perf.get("available"), bool):
        return fail(path, "perf.available missing or not a boolean")
    if perf.get("status") not in PERF_STATUSES:
        return fail(
            path,
            f"perf.status must be one of {PERF_STATUSES}, "
            f"got {perf.get('status')!r}",
        )
    if perf["available"] != (perf["status"] == "available"):
        return fail(path, "perf.available contradicts perf.status")
    return True


def validate_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"cannot parse: {e}")
    if not isinstance(doc, dict):
        return fail(path, "top level is not an object")
    if doc.get("schema") != "alp-bench-v1":
        return fail(path, f"schema is {doc.get('schema')!r}, want 'alp-bench-v1'")
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        return fail(path, "bench missing or not a non-empty string")
    if "kernel_tier" in doc and doc["kernel_tier"] not in KERNEL_TIERS:
        return fail(
            path,
            f"top-level kernel_tier must be one of {KERNEL_TIERS}, "
            f"got {doc['kernel_tier']!r}",
        )
    if "perf" in doc and not validate_perf(path, doc["perf"]):
        return False
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        return fail(path, "records missing, not an array, or empty")
    for i, rec in enumerate(records):
        if not validate_record(path, i, rec):
            return False
    # A report claiming counters were unavailable must not carry counter-
    # derived records — that would mean the rates are fabricated.
    if "perf" in doc and not doc["perf"]["available"]:
        for i, rec in enumerate(records):
            if any(rec["metric"].endswith(s) for s in PERF_METRIC_UNITS):
                return fail(
                    path,
                    f"records[{i}] carries perf metric {rec['metric']!r} "
                    "but perf.available is false",
                )
    print(f"{path}: OK ({doc['bench']}, {len(records)} records)")
    return True


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip())
        return 2
    ok = all([validate_file(p) for p in argv[1:]])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
