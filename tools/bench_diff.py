#!/usr/bin/env python3
"""Diff two alp-bench-v1 JSON reports and flag regressions.

Usage:
  bench_diff.py <baseline.json> <current.json>
      [--ratio-threshold=PCT]   compression metrics; default 5 (percent)
      [--speed-threshold=PCT|none]
                                speed metrics; default none (cycle counts
                                are machine-dependent, so CI leaves them
                                informational; set a percentage on pinned
                                hardware)
      [--latency-threshold=PCT|none]
                                serving latency metrics (p50/p99/p999);
                                default none
      [--markdown-out=PATH]     also write the markdown table to PATH
      [--all]                   list every joined metric, not just changes

Records are joined on (dataset, scheme, metric, threads). Each metric has a
direction: for bits_per_value and *cycles_per_value* lower is better; for
compression_ratio and *tuples_per_cycle* higher is better. Serving-tail
metrics (*latency*) are lower-better and gate through their own
--latency-threshold (default none: tail latencies are machine- and
load-dependent, so CI sets a deliberately generous percentage). A joined
pair whose worse-direction delta exceeds the metric class's threshold is a
regression; improvements and unknown metrics are reported but never fail.

Joined pairs whose records carry *different* `kernel_tier` tags (the decode
kernel the measurement rode on, see docs/BENCH_SCHEMA.md) are listed as
`tier-mismatch` and never gate: comparing a scalar-tier baseline against an
avx512 run measures the dispatcher, not a regression.

Output is a markdown table (stdout, and --markdown-out when given). Exit
status: 0 = no regressions, 1 = at least one regression, 2 = bad input.
Standard library only, so CI can run it on a bare runner.
"""

import json
import sys

# Metric direction registry. Compression ("ratio") metrics are
# deterministic for a given dataset + config, so they gate CI; speed
# metrics are cycle counts and only gate when a threshold is set.
LOWER_BETTER_RATIO = {"bits_per_value"}
HIGHER_BETTER_RATIO = {"compression_ratio"}


def metric_class(metric):
    """Returns (kind, lower_is_better) with kind in
    ratio|speed|latency|other."""
    if metric in LOWER_BETTER_RATIO:
        return "ratio", True
    if metric in HIGHER_BETTER_RATIO:
        return "ratio", False
    if "latency" in metric:
        return "latency", True
    if "cycles_per" in metric:
        return "speed", True
    if "tuples_per_cycle" in metric or "per_second" in metric:
        return "speed", False
    return "other", True


def load_records(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: cannot parse {path}: {e}", file=sys.stderr)
        return None
    records = doc.get("records")
    if not isinstance(records, list):
        print(f"bench_diff: {path} has no records array", file=sys.stderr)
        return None
    out = {}
    for rec in records:
        if not isinstance(rec, dict):
            continue
        key = (
            rec.get("dataset"),
            rec.get("scheme"),
            rec.get("metric"),
            rec.get("threads"),
        )
        if None in key[:3] or not isinstance(rec.get("value"), (int, float)):
            continue
        out[key] = (float(rec["value"]), rec.get("kernel_tier"))
    if not out:
        print(f"bench_diff: {path} has no usable records", file=sys.stderr)
        return None
    return out


def parse_threshold(text, flag):
    if text == "none":
        return None
    try:
        value = float(text)
    except ValueError:
        value = -1.0
    if value < 0:
        print(f"bench_diff: bad {flag} value: {text!r}", file=sys.stderr)
        sys.exit(2)
    return value


def main(argv):
    paths = []
    ratio_threshold = 5.0
    speed_threshold = None
    latency_threshold = None
    markdown_out = None
    show_all = False
    for arg in argv[1:]:
        if arg.startswith("--ratio-threshold="):
            ratio_threshold = parse_threshold(
                arg.split("=", 1)[1], "--ratio-threshold")
        elif arg.startswith("--speed-threshold="):
            speed_threshold = parse_threshold(
                arg.split("=", 1)[1], "--speed-threshold")
        elif arg.startswith("--latency-threshold="):
            latency_threshold = parse_threshold(
                arg.split("=", 1)[1], "--latency-threshold")
        elif arg.startswith("--markdown-out="):
            markdown_out = arg.split("=", 1)[1]
        elif arg == "--all":
            show_all = True
        elif arg.startswith("--"):
            print(f"bench_diff: unknown flag {arg}", file=sys.stderr)
            return 2
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__.strip())
        return 2

    baseline = load_records(paths[0])
    current = load_records(paths[1])
    if baseline is None or current is None:
        return 2

    thresholds = {"ratio": ratio_threshold, "speed": speed_threshold,
                  "latency": latency_threshold, "other": None}
    joined = sorted(set(baseline) & set(current))
    only_base = len(set(baseline) - set(current))
    only_cur = len(set(current) - set(baseline))

    rows = []
    regressions = 0
    improvements = 0
    tier_mismatches = 0
    for key in joined:
        dataset, scheme, metric, threads = key
        (base, base_tier), (cur, cur_tier) = baseline[key], current[key]
        kind, lower_better = metric_class(metric)
        if base == 0.0:
            delta_pct = 0.0 if cur == 0.0 else float("inf")
        else:
            delta_pct = (cur - base) / abs(base) * 100.0
        worse = delta_pct > 0 if lower_better else delta_pct < 0
        threshold = thresholds[kind]
        status = "ok"
        if base_tier != cur_tier and None not in (base_tier, cur_tier):
            # Different decode kernel tiers: informational, never a gate.
            status = f"tier-mismatch ({base_tier}→{cur_tier})"
            tier_mismatches += 1
        elif worse and threshold is not None and abs(delta_pct) > threshold:
            status = "REGRESSION"
            regressions += 1
        elif not worse and delta_pct != 0.0:
            status = "improved"
            improvements += 1
        if show_all or status != "ok":
            name = f"{dataset}/{scheme}"
            if threads is not None:
                name += f"@{threads}t"
            rows.append((name, metric, base, cur, delta_pct, status))

    lines = []
    lines.append(f"### bench diff: `{paths[0]}` → `{paths[1]}`")
    lines.append("")
    lines.append(
        f"{len(joined)} joined records ({only_base} only in baseline, "
        f"{only_cur} only in current) · ratio threshold {ratio_threshold}% · "
        f"speed threshold "
        f"{'off' if speed_threshold is None else f'{speed_threshold}%'} · "
        f"latency threshold "
        f"{'off' if latency_threshold is None else f'{latency_threshold}%'}")
    lines.append("")
    if rows:
        lines.append("| series | metric | baseline | current | delta | status |")
        lines.append("|---|---|---:|---:|---:|---|")
        for name, metric, base, cur, delta_pct, status in rows:
            delta = ("inf" if delta_pct == float("inf")
                     else f"{delta_pct:+.2f}%")
            lines.append(f"| {name} | {metric} | {base:.6g} | {cur:.6g} "
                         f"| {delta} | {status} |")
        lines.append("")
    summary = f"**{regressions} regression(s), {improvements} improvement(s)"
    if tier_mismatches:
        summary += f", {tier_mismatches} kernel-tier mismatch(es) not gated"
    lines.append(summary + ".**")

    report = "\n".join(lines) + "\n"
    sys.stdout.write(report)
    if markdown_out:
        try:
            with open(markdown_out, "w", encoding="utf-8") as f:
                f.write(report)
        except OSError as e:
            print(f"bench_diff: cannot write {markdown_out}: {e}",
                  file=sys.stderr)
            return 2
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
