// alp — command-line front end for the ALP column format.
//
//   alp [--threads=N] compress   <in.bin|in.csv> <out.alp>   compress doubles
//   alp [--threads=N] decompress <in.alp> <out.bin|out.csv>  restore doubles
//   alp inspect    <in.alp>                      header, schemes, ratios
//   alp explain    <in.alp> [--json] [--top=N] [--perf]  per-vector x-ray
//                                                report (--perf adds a
//                                                measured decode profile:
//                                                IPC, cache misses/value)
//   alp [--threads=N] verify <in.alp> <original> bit-exactness check
//   alp bench      <in.bin|in.csv>               compare all schemes on a file
//   alp [--threads=N] stats <in.bin|in.csv> [--prom] [--perf]  telemetry
//                                                profile (--prom: Prometheus
//                                                text; --perf: arm per-span
//                                                hardware counters — stage
//                                                IPC and miss rates, rdtsc-
//                                                only when perf_event is
//                                                unavailable)
//   alp gen        <dataset> <count> <out>       emit a surrogate dataset
//   alp datasets                                 list surrogate names
//   alp [--threads=N] serve-bench <in.bin|in.csv> [--requests=N] [--queue=N]
//                     [--catalog-bytes-limit=N]  serving-layer smoke benchmark
//                                                (N bytes of decoded-vector
//                                                cache shared by the catalog;
//                                                0 = off)
//                     [--slow-log=<path>] [--slow-us=N]  arm the per-request
//                                                flight recorder: requests
//                                                over N us (or that fail /
//                                                hit a fault site) append
//                                                their dump as a JSON line
//                                                (see docs/OBSERVABILITY.md)
//
// Exit codes are a documented contract (scripts and tests branch on them):
// every alp::Status class maps to its own code, so a pipeline can tell a
// checksum mismatch from a truncated download without parsing stderr.
//
//   0  success                     13 UNSUPPORTED_VERSION
//   1  generic / data mismatch     14 IO (unreadable/unwritable file)
//   2  usage error                 15 CANCELLED
//   10 TRUNCATED                   16 DEADLINE_EXCEEDED
//   11 CORRUPT                     17 RESOURCE_EXHAUSTED (admission reject)
//   12 CHECKSUM_MISMATCH           18 NOT_FOUND
//
// Binary files are raw host-endian float64; ".csv"/".txt" files hold one
// value per line. `compress --float32` narrows the input to float before
// encoding, producing a float32 column; `inspect`, `explain` and
// `decompress` detect the column's element type automatically.
//
// --threads=N (or the ALP_THREADS environment variable) sets the worker
// count for the parallel rowgroup pipeline; the default is the hardware
// concurrency. The compressed output is byte-identical at every thread
// count — see README "Threading & determinism".
//
// --kernel=scalar|avx2|avx512|neon|auto forces the decode kernel tier for
// the run (see src/alp/kernel_dispatch.h). Decoded bytes are identical on
// every tier; only speed differs. Requesting a tier this host or build
// cannot run is a hard error (the ALP_FORCE_KERNEL environment variable
// offers the same control with warn-and-fall-back semantics instead).
//
// --metrics=json|text enables the observability registry for the run and
// prints its snapshot (per-stage cycle spans, scheme decisions, exception
// histograms — see docs/OBSERVABILITY.md) after the command completes.
// --trace=<path> records every instrumented span during the command and
// writes a Chrome/Perfetto trace_event JSON file (open in
// https://ui.perfetto.dev). Telemetry never changes the compressed bytes.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include <algorithm>
#include <future>

#include "alp/alp.h"
#include "codecs/codec.h"
#include "data/datasets.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/sink.h"
#include "obs/trace_buffer.h"
#include "io/decoded_vector_cache.h"
#include "io/random_access_source.h"
#include "io/seekable_reader.h"
#include "obs/xray.h"
#include "server/server.h"
#include "util/cycle_clock.h"
#include "util/file_io.h"
#include "util/thread_pool.h"

namespace {

/// Worker count for the parallel rowgroup pipeline: --threads=N wins, then
/// ALP_THREADS, then hardware concurrency (ThreadPool::DefaultThreadCount).
unsigned g_threads = 0;

/// --metrics mode: 0 = off, 1 = text, 2 = json.
int g_metrics = 0;

/// --trace output path; empty = tracing off.
std::string g_trace_path;

/// --float32: compress narrows the input to float before encoding.
bool g_float32 = false;

alp::ThreadPool& Pool() {
  static alp::ThreadPool pool(g_threads == 0 ? alp::ThreadPool::DefaultThreadCount()
                                             : g_threads);
  return pool;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  alp [--threads=N] [--float32] compress <in.bin|in.csv> <out.alp>\n"
               "  alp [--threads=N] decompress <in.alp> <out.bin|out.csv>\n"
               "  alp inspect    <in.alp>\n"
               "  alp explain    <in.alp> [--json] [--top=N] [--perf]\n"
               "  alp [--threads=N] verify <in.alp> <original.bin|original.csv>\n"
               "  alp bench      <in.bin|in.csv>\n"
               "  alp [--threads=N] stats <in.bin|in.csv> [--prom] [--perf]\n"
               "  alp gen        <dataset> <count> <out.bin|out.csv>\n"
               "  alp datasets\n"
               "  alp [--threads=N] serve-bench <in.bin|in.csv> [--requests=N] "
               "[--queue=N] [--catalog-bytes-limit=N]\n"
               "                    [--slow-log=<path>] [--slow-us=N]\n"
               "\n"
               "--threads=N (or ALP_THREADS) sizes the rowgroup worker pool;\n"
               "output bytes are identical at every thread count.\n"
               "--kernel=scalar|avx2|avx512|neon|auto forces the decode\n"
               "kernel tier (default: best tier the CPU supports; decoded\n"
               "bytes are identical on every tier). Unavailable tiers are a\n"
               "hard error; the ALP_FORCE_KERNEL env var does the same with\n"
               "warn-and-fall-back semantics.\n"
               "--metrics=json|text prints the telemetry registry snapshot\n"
               "after the command (see docs/OBSERVABILITY.md).\n"
               "--trace=<path> writes a Chrome/Perfetto trace_event JSON\n"
               "capture of the command's instrumented spans.\n");
  return 2;
}

int Fail(const char* message, const std::string& detail = "") {
  std::fprintf(stderr, "error: %s%s%s\n", message, detail.empty() ? "" : ": ",
               detail.c_str());
  return 1;
}

/// The documented Status → exit-code mapping (see the header comment;
/// tests/test_cli_xray.py asserts it). Codes 10+ leave 1 and 2 free for
/// generic and usage errors.
int ExitCodeFor(const alp::Status& status) {
  switch (status.code()) {
    case alp::StatusCode::kOk: return 0;
    case alp::StatusCode::kTruncated: return 10;
    case alp::StatusCode::kCorrupt: return 11;
    case alp::StatusCode::kChecksumMismatch: return 12;
    case alp::StatusCode::kUnsupportedVersion: return 13;
    case alp::StatusCode::kIo: return 14;
    case alp::StatusCode::kCancelled: return 15;
    case alp::StatusCode::kDeadlineExceeded: return 16;
    case alp::StatusCode::kResourceExhausted: return 17;
    case alp::StatusCode::kNotFound: return 18;
  }
  return 1;
}

/// Status-typed failure: prints the full Status (code name, message,
/// offset) and exits with that code's dedicated exit code.
int Fail(const alp::Status& status, const char* message) {
  std::fprintf(stderr, "error: %s: %s\n", message, status.ToString().c_str());
  return ExitCodeFor(status);
}

template <typename T>
int CompressValues(const std::vector<T>& values, const std::string& out_path) {
  alp::CompressionInfo info;
  const uint64_t t0 = alp::CycleNow();
  const auto buffer =
      alp::CompressColumnParallel(values.data(), values.size(), {}, &info, &Pool());
  const uint64_t cycles = alp::CycleNow() - t0;

  if (!alp::WriteFileBytes(out_path, buffer.data(), buffer.size())) {
    return Fail(alp::Status::Io(out_path), "cannot write output");
  }
  std::printf("%zu values -> %zu bytes (%.2f bits/value, %.2fx)\n", values.size(),
              buffer.size(), alp::BitsPerValue<T>(buffer, values.size()),
              values.size() * sizeof(T) / static_cast<double>(buffer.size()));
  std::printf("rowgroups: %zu (%zu ALP_rd) | exceptions/vector: %.2f | "
              "%.3f tuples/cycle | %u threads\n",
              info.rowgroups, info.rowgroups_rd, info.ExceptionsPerVector(),
              cycles == 0 ? 0.0 : static_cast<double>(values.size()) / cycles,
              Pool().size());
  return 0;
}

int CmdCompress(const std::string& in_path, const std::string& out_path) {
  const auto values = alp::ReadDoublesFileEx(in_path);
  if (!values.ok()) return Fail(values.status(), "cannot read input");
  if (g_float32) {
    std::vector<float> narrowed(values->begin(), values->end());
    return CompressValues(narrowed, out_path);
  }
  return CompressValues(*values, out_path);
}

template <typename T>
int DecompressAs(const std::vector<uint8_t>& buffer, const std::string& out_path,
                 const alp::Status& open_error) {
  auto reader =
      alp::ColumnReader<T>::OpenParallel(buffer.data(), buffer.size(), &Pool());
  if (!reader.ok()) {
    // The double error names the real problem when both types fail.
    return Fail(open_error.ok() ? reader.status() : open_error,
                "not a valid ALP column");
  }
  std::vector<T> values(reader->value_count());
  const uint64_t t0 = alp::CycleNow();
  const alp::Status decode = reader->TryDecodeAllParallel(values.data(), &Pool());
  const uint64_t cycles = alp::CycleNow() - t0;
  if (!decode.ok()) return Fail(decode, "cannot decode column");
  // Output files are always float64; float32 columns are widened (lossless).
  const std::vector<double> wide(values.begin(), values.end());
  if (!alp::WriteDoublesFile(out_path, wide.data(), wide.size())) {
    return Fail(alp::Status::Io(out_path), "cannot write output");
  }
  std::printf("%zu values restored (%.3f tuples/cycle, %u threads)\n",
              values.size(),
              cycles == 0 ? 0.0 : static_cast<double>(values.size()) / cycles,
              Pool().size());
  return 0;
}

int CmdDecompress(const std::string& in_path, const std::string& out_path) {
  const auto buffer = alp::ReadFileBytes(in_path);
  if (!buffer.has_value()) return Fail(alp::Status::Io(in_path), "cannot read input");
  auto reader = alp::ColumnReader<double>::OpenParallel(buffer->data(),
                                                        buffer->size(), &Pool());
  if (!reader.ok()) {
    // The header's type tag decides which reader opens; fall back to float32.
    return DecompressAs<float>(*buffer, out_path, reader.status());
  }
  return DecompressAs<double>(*buffer, out_path, alp::Status::Ok());
}

template <typename T>
int InspectAs(const std::string& in_path, const std::vector<uint8_t>& buffer,
              const alp::ColumnReader<T>& reader) {
  std::printf("file:        %s (%zu bytes)\n", in_path.c_str(), buffer.size());
  std::printf("type:        %s\n", sizeof(T) == 8 ? "float64" : "float32");
  std::printf("format:      v%u%s\n", reader.format_version(),
              reader.format_version() >= 3 ? " (checksummed)" : "");
  std::printf("values:      %zu\n", reader.value_count());
  std::printf("vectors:     %zu\n", reader.vector_count());
  std::printf("bits/value:  %.2f\n",
              alp::BitsPerValue<T>(buffer, reader.value_count()));

  size_t rd_vectors = 0;
  double global_min = std::numeric_limits<double>::infinity();
  double global_max = -global_min;
  for (size_t v = 0; v < reader.vector_count(); ++v) {
    rd_vectors += reader.VectorScheme(v) == alp::Scheme::kAlpRd;
    global_min = std::min(global_min, reader.Stats(v).min);
    global_max = std::max(global_max, reader.Stats(v).max);
  }
  std::printf("schemes:     %zu ALP vectors, %zu ALP_rd vectors\n",
              reader.vector_count() - rd_vectors, rd_vectors);
  if (reader.vector_count() > 0) {
    std::printf("value range: [%g, %g]\n", global_min, global_max);
  }
  return 0;
}

int CmdInspect(const std::string& in_path) {
  const auto buffer = alp::ReadFileBytes(in_path);
  if (!buffer.has_value()) return Fail(alp::Status::Io(in_path), "cannot read input");
  // The header's type tag decides which reader opens: try float64, then
  // fall back to float32. When both fail, the float64 error names the real
  // problem (a float32 column is not "corrupt", just narrower).
  auto reader = alp::ColumnReader<double>::Open(buffer->data(), buffer->size());
  if (reader.ok()) return InspectAs<double>(in_path, *buffer, *reader);
  auto reader32 = alp::ColumnReader<float>::Open(buffer->data(), buffer->size());
  if (reader32.ok()) return InspectAs<float>(in_path, *buffer, *reader32);
  return Fail(reader.status(), "not a valid ALP column");
}

int CmdExplain(const std::string& in_path, bool json, size_t top_n,
               bool perf) {
  const auto buffer = alp::ReadFileBytes(in_path);
  if (!buffer.has_value()) return Fail(alp::Status::Io(in_path), "cannot read input");
  const auto report = alp::obs::ColumnXRay::Analyze(buffer->data(), buffer->size());
  if (!report.ok()) {
    return Fail(report.status(), "not a valid ALP column");
  }
  // --perf is the one x-ray section that decodes: repeated full passes
  // under a hardware-counter read. Degrades to rdtsc-only (and says so)
  // when perf_event is unavailable.
  alp::obs::XRayDecodePerf decode_perf;
  const alp::obs::XRayDecodePerf* perf_ptr = nullptr;
  if (perf) {
    const auto measured =
        alp::obs::ColumnXRay::MeasureDecodePerf(buffer->data(), buffer->size());
    if (!measured.ok()) {
      return Fail(measured.status(), "decode-perf measurement failed");
    }
    decode_perf = *measured;
    perf_ptr = &decode_perf;
  }
  if (json) {
    std::printf("%s\n",
                alp::obs::ColumnXRay::ToJson(*report, top_n, perf_ptr).c_str());
  } else {
    std::printf("file: %s\n%s", in_path.c_str(),
                alp::obs::ColumnXRay::ToText(*report, top_n, perf_ptr).c_str());
  }
  return 0;
}

int CmdVerify(const std::string& alp_path, const std::string& original_path) {
  const auto buffer = alp::ReadFileBytes(alp_path);
  if (!buffer.has_value()) return Fail(alp::Status::Io(alp_path), "cannot read input");
  const auto original = alp::ReadDoublesFileEx(original_path);
  if (!original.ok()) {
    return Fail(original.status(), "cannot read original");
  }
  auto reader = alp::ColumnReader<double>::OpenParallel(buffer->data(),
                                                        buffer->size(), &Pool());
  if (!reader.ok()) {
    return Fail(reader.status(), "not a valid ALP column");
  }
  if (reader->value_count() != original->size()) {
    return Fail("value counts differ");
  }
  std::vector<double> restored(reader->value_count());
  const alp::Status decode = reader->TryDecodeAllParallel(restored.data(), &Pool());
  if (!decode.ok()) return Fail(decode, "cannot decode column");
  for (size_t i = 0; i < restored.size(); ++i) {
    if (alp::BitsOf(restored[i]) != alp::BitsOf((*original)[i])) {
      std::fprintf(stderr, "MISMATCH at row %zu\n", i);
      return 1;
    }
  }
  std::printf("OK: %zu values bit-identical\n", restored.size());
  return 0;
}

int CmdBench(const std::string& in_path) {
  const auto values = alp::ReadDoublesFileEx(in_path);
  if (!values.ok()) return Fail(values.status(), "cannot read input");
  if (values->empty()) return Fail("no values in input");
  const size_t n = values->size();

  std::printf("%zu values from %s\n\n", n, in_path.c_str());
  std::printf("%-10s %12s %14s %14s\n", "scheme", "bits/value", "comp t/c",
              "dec t/c");
  std::printf("----------------------------------------------------\n");

  const auto report = [&](const char* name, size_t compressed_bytes,
                          uint64_t comp_cycles, uint64_t dec_cycles) {
    std::printf("%-10s %12.2f %14.3f %14.3f\n", name,
                compressed_bytes * 8.0 / n,
                comp_cycles == 0 ? 0.0 : static_cast<double>(n) / comp_cycles,
                dec_cycles == 0 ? 0.0 : static_cast<double>(n) / dec_cycles);
  };

  // ALP via the column format.
  {
    const uint64_t t0 = alp::CycleNow();
    const auto buffer = alp::CompressColumn(values->data(), n);
    const uint64_t t1 = alp::CycleNow();
    std::vector<double> out(n);
    alp::DecompressColumn(buffer, out.data());
    const uint64_t t2 = alp::CycleNow();
    report("ALP", buffer.size(), t1 - t0, t2 - t1);
  }

  for (const auto& codec : alp::codecs::AllDoubleCodecs()) {
    if (codec->name() == "ALP") continue;
    const uint64_t t0 = alp::CycleNow();
    const auto buffer = codec->Compress(values->data(), n);
    const uint64_t t1 = alp::CycleNow();
    std::vector<double> out(n);
    codec->Decompress(buffer.data(), buffer.size(), n, out.data());
    const uint64_t t2 = alp::CycleNow();
    report(std::string(codec->name()).c_str(), buffer.size(), t1 - t0, t2 - t1);
  }
  return 0;
}

/// Full-pipeline telemetry profile of one file: compress + decode + verify
/// in memory with the registry enabled, then dump the snapshot. This is the
/// quickest way to see where a dataset's cycles go and how the sampler
/// behaved, without writing any output file.
int CmdStats(const std::string& in_path, bool prom, bool perf) {
  const auto values = alp::ReadDoublesFileEx(in_path);
  if (!values.ok()) return Fail(values.status(), "cannot read input");

  alp::obs::SetEnabled(true);
  alp::obs::MetricRegistry::Global().Reset();
  // Obs-layer health (trace/recorder drop counts) registered up front so
  // the snapshot and the Prometheus exposition name them even at zero.
  alp::obs::RegisterObsHealthMetrics();
  if (perf) {
    // Arm per-span hardware counters for the run: every instrumented stage
    // (sample/choose/encode/pack, unFFOR-decode, chunk-fetch, ...) reports
    // IPC and miss rates on top of its cycle counts. The probe line goes to
    // stderr so --prom output stays a clean exposition.
    alp::obs::SetPerfSpansEnabled(true);
    alp::obs::PublishPerfAvailability();
    const alp::obs::PerfProbeResult& probe = alp::obs::PerfProbe();
    std::fprintf(stderr, "perf counters: %s\n",
                 probe.detail.empty()
                     ? alp::obs::PerfAvailabilityName(probe.availability)
                     : probe.detail.c_str());
  }

  alp::CompressionInfo info;
  const auto buffer =
      alp::CompressColumnParallel(values->data(), values->size(), {}, &info, &Pool());
  auto reader = alp::ColumnReader<double>::OpenParallel(buffer.data(),
                                                        buffer.size(), &Pool());
  if (!reader.ok()) {
    return Fail(reader.status(), "round-trip open failed");
  }
  std::vector<double> restored(reader->value_count());
  const alp::Status decode = reader->TryDecodeAllParallel(restored.data(), &Pool());
  if (!decode.ok()) return Fail(decode, "round-trip decode failed");
  for (size_t i = 0; i < restored.size(); ++i) {
    if (alp::BitsOf(restored[i]) != alp::BitsOf((*values)[i])) {
      return Fail("round-trip mismatch");
    }
  }

  // Out-of-core pass: decode the same column twice through a SeekableReader
  // sharing a DecodedVectorCache — cold (all misses) then warm (served from
  // cache) — so the profile also covers the io layer's chunk/cache
  // telemetry and the cache counters below have real traffic behind them.
  alp::io::DecodedVectorCache cache(64ull << 20);
  alp::io::SeekableReaderOptions seek_options;
  seek_options.cache = &cache;
  auto seekable = alp::io::SeekableReader<double>::Open(
      std::make_shared<alp::io::MemorySource>(buffer.data(), buffer.size()),
      seek_options);
  if (!seekable.ok()) return Fail(seekable.status(), "seekable open failed");
  for (int pass = 0; pass < 2; ++pass) {
    const alp::Status s = (*seekable)->TryDecodeAll(restored.data());
    if (!s.ok()) return Fail(s, "seekable decode failed");
  }
  for (size_t i = 0; i < restored.size(); ++i) {
    if (alp::BitsOf(restored[i]) != alp::BitsOf((*values)[i])) {
      return Fail("seekable round-trip mismatch");
    }
  }

  const auto snapshot = alp::obs::MetricRegistry::Global().Snapshot();
  if (prom) {
    // Prometheus text exposition of the same snapshot — what a scraper (or
    // the CI linter) consumes; the human profile lines are omitted.
    std::fputs(alp::obs::PrometheusText(snapshot).c_str(), stdout);
    g_metrics = 0;
    return 0;
  }
  const bool json = g_metrics == 2;
  if (!json) {
    std::printf("%zu values | %.2f bits/value | %zu rowgroups (%zu ALP_rd) | "
                "%u threads | kernel tier: %s\n",
                values->size(),
                alp::BitsPerValue<double>(buffer, values->size()),
                info.rowgroups, info.rowgroups_rd, Pool().size(),
                alp::kernels::ActiveTierName());
    const alp::io::DecodedVectorCache::Stats cs = cache.TotalStats();
    std::printf("cache: hits %" PRIu64 " | misses %" PRIu64 " | evictions %"
                PRIu64 " | %" PRIu64 " entries, %" PRIu64 " bytes resident\n",
                cs.hits, cs.misses, cs.evictions, cs.entries, cs.bytes);
  }
  alp::obs::TraceSink::Emit(snapshot, json, std::cout);
  // The command already printed the registry; suppress the end-of-run dump.
  g_metrics = 0;
  return 0;
}

int CmdGen(const std::string& name, const std::string& count_str,
           const std::string& out_path) {
  const auto* spec = alp::data::FindDataset(name);
  if (spec == nullptr) {
    return Fail(alp::Status::NotFound(name), "unknown dataset (try `alp datasets`)");
  }
  const long long count = std::atoll(count_str.c_str());
  if (count <= 0) return Fail("bad count", count_str);
  const auto values = alp::data::Generate(*spec, static_cast<size_t>(count));
  if (!alp::WriteDoublesFile(out_path, values.data(), values.size())) {
    return Fail(alp::Status::Io(out_path), "cannot write output");
  }
  std::printf("%lld values of %s written to %s\n", count, name.c_str(),
              out_path.c_str());
  return 0;
}

/// serve-bench: spin up an alp::server::Server over the input file and push
/// a deterministic mixed-class workload through it (60% point lookups, 30%
/// aggregates, 10% scans by request index). Prints per-class latency
/// percentiles and the admission/shedding counters — the quick smoke check
/// for the serving layer; bench_serving_load is the calibrated generator.
int CmdServeBench(const std::string& in_path, size_t requests, size_t queue,
                  size_t cache_bytes, const std::string& slow_log,
                  uint64_t slow_us) {
  const auto values = alp::ReadDoublesFileEx(in_path);
  if (!values.ok()) return Fail(values.status(), "cannot read input");

  alp::server::ServerConfig config;
  config.workers = g_threads;  // 0 = hardware concurrency.
  config.queue_capacity = queue;
  config.cache_bytes = cache_bytes;
  config.slow_log_path = slow_log;
  config.slow_query_us = slow_us;
  alp::server::Server server(config);
  const alp::Status add = server.AddColumn("col", values->data(), values->size());
  if (!add.ok()) return Fail(add, "cannot build serving column");

  const size_t vectors =
      (values->size() + alp::kVectorSize - 1) / alp::kVectorSize;
  std::vector<uint64_t> latency_ns[alp::server::kQueryClassCount];
  const uint64_t t0 = alp::NanoNow();
  // Submit in batches bounded by the queue so the smoke run measures
  // completion latency, not admission rejections.
  const size_t batch = queue > 1 ? queue / 2 : 1;
  size_t issued = 0;
  while (issued < requests) {
    std::vector<std::pair<alp::server::QueryClass, std::future<alp::server::Response>>>
        batch_futures;
    for (size_t b = 0; b < batch && issued < requests; ++b, ++issued) {
      alp::server::Request req;
      req.column = "col";
      const size_t slot = issued % 10;
      if (slot < 6) {
        req.query_class = alp::server::QueryClass::kPointLookup;
        req.vector_index = vectors == 0 ? 0 : issued % vectors;
      } else if (slot < 9) {
        req.query_class = alp::server::QueryClass::kAggregate;
      } else {
        req.query_class = alp::server::QueryClass::kScan;
      }
      batch_futures.emplace_back(req.query_class, server.Submit(std::move(req)));
    }
    for (auto& [qc, future] : batch_futures) {
      const alp::server::Response r = future.get();
      if (r.status.ok()) {
        latency_ns[static_cast<size_t>(qc)].push_back(r.queue_ns + r.exec_ns);
      }
    }
  }
  const uint64_t wall_ns = alp::NanoNow() - t0;
  server.Shutdown();

  const auto percentile = [](std::vector<uint64_t>& v, double p) -> double {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    const size_t idx = static_cast<size_t>(p * (v.size() - 1));
    return v[idx] / 1e3;  // microseconds
  };
  std::printf("serve-bench: %zu requests, %u workers, queue %zu, %.2f ms wall\n",
              requests, server.workers(), queue, wall_ns / 1e6);
  for (size_t c = 0; c < alp::server::kQueryClassCount; ++c) {
    auto& lat = latency_ns[c];
    std::printf("  %-12s %6zu ok | p50 %9.1f us | p99 %9.1f us | p999 %9.1f us\n",
                alp::server::QueryClassName(static_cast<alp::server::QueryClass>(c)),
                lat.size(), percentile(lat, 0.50), percentile(lat, 0.99),
                percentile(lat, 0.999));
  }
  const alp::server::ServerStats stats = server.stats();
  std::printf("  admitted %" PRIu64 "/%" PRIu64 " | completed %" PRIu64
              " | shed %" PRIu64 " (queue_full %" PRIu64 ", class %" PRIu64
              ") | deadline_missed %" PRIu64 " | max_depth %" PRIu64 "\n",
              stats.admitted, stats.submitted, stats.completed,
              stats.SheddedTotal(), stats.shed_queue_full, stats.shed_class,
              stats.deadline_missed, stats.max_queue_depth);
  if (!slow_log.empty() || slow_us > 0) {
    std::printf("  slow queries %" PRIu64 " | flight dumps %" PRIu64 "%s%s\n",
                stats.slow_queries, stats.flight_dumps,
                slow_log.empty() ? "" : " -> ",
                slow_log.c_str());
  }
  const alp::io::DecodedVectorCache::Stats cs = server.cache_stats();
  std::printf("  cache: limit %zu bytes | hits %" PRIu64 " | misses %" PRIu64
              " | evictions %" PRIu64 " | %" PRIu64 " entries, %" PRIu64
              " bytes resident\n",
              cache_bytes, cs.hits, cs.misses, cs.evictions, cs.entries,
              cs.bytes);
  return 0;
}

int CmdDatasets() {
  for (const auto& spec : alp::data::AllDatasets()) {
    std::printf("%-14s %s, ~%" PRIu64 " values in the paper\n",
                std::string(spec.name).c_str(),
                spec.time_series ? "time series" : "non-time series",
                spec.paper_value_count);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Global options come before the command: --threads=N, --metrics=...,
  // --trace=<path> and --float32.
  int arg = 1;
  while (arg < argc && std::strncmp(argv[arg], "--", 2) == 0) {
    if (std::strncmp(argv[arg], "--threads=", 10) == 0) {
      const long v = std::atol(argv[arg] + 10);
      if (v <= 0) return Fail("bad --threads value", argv[arg]);
      g_threads = static_cast<unsigned>(v);
    } else if (std::strcmp(argv[arg], "--metrics=text") == 0) {
      g_metrics = 1;
    } else if (std::strcmp(argv[arg], "--metrics=json") == 0) {
      g_metrics = 2;
    } else if (std::strncmp(argv[arg], "--metrics", 9) == 0) {
      return Fail("bad --metrics value (use --metrics=json or --metrics=text)",
                  argv[arg]);
    } else if (std::strncmp(argv[arg], "--trace=", 8) == 0) {
      g_trace_path = argv[arg] + 8;
      if (g_trace_path.empty()) return Fail("bad --trace value", argv[arg]);
    } else if (std::strcmp(argv[arg], "--float32") == 0) {
      g_float32 = true;
    } else if (std::strncmp(argv[arg], "--kernel=", 9) == 0) {
      // Unlike the ALP_FORCE_KERNEL env (warn + fall back), an explicit
      // flag the user typed is a hard error when it cannot be honored.
      const char* name = argv[arg] + 9;
      if (!alp::kernels::ForceTierByName(name)) {
        return Fail(
            "bad --kernel value (want scalar|avx2|avx512|neon|auto, and the "
            "tier must be available on this host/build)",
            argv[arg]);
      }
    } else {
      return Usage();
    }
    ++arg;
  }
  argc -= arg - 1;
  argv += arg - 1;
  if (argc < 2) return Usage();
  if (g_metrics != 0) alp::obs::SetEnabled(true);
  if (!g_trace_path.empty()) alp::obs::StartTracing();

  const std::string command = argv[1];
  int rc = -1;
  if (command == "compress" && argc == 4) rc = CmdCompress(argv[2], argv[3]);
  else if (command == "decompress" && argc == 4) rc = CmdDecompress(argv[2], argv[3]);
  else if (command == "inspect" && argc == 3) rc = CmdInspect(argv[2]);
  else if (command == "explain" && argc >= 3 && argc <= 6) {
    // Trailing command options: [--json] [--top=N] [--perf], any order.
    bool json = false;
    bool perf = false;
    size_t top = SIZE_MAX;  // Sentinel: per-format default.
    bool bad = false;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) {
        json = true;
      } else if (std::strcmp(argv[i], "--perf") == 0) {
        perf = true;
      } else if (std::strncmp(argv[i], "--top=", 6) == 0) {
        const long v = std::atol(argv[i] + 6);
        if (v < 0) return Fail("bad --top value", argv[i]);
        top = static_cast<size_t>(v);  // 0 = every vector.
      } else {
        bad = true;
      }
    }
    if (!bad) {
      if (top == SIZE_MAX) top = json ? 16 : 5;
      rc = CmdExplain(argv[2], json, top, perf);
    }
  }
  else if (command == "verify" && argc == 4) rc = CmdVerify(argv[2], argv[3]);
  else if (command == "bench" && argc == 3) rc = CmdBench(argv[2]);
  else if (command == "stats" && argc >= 3 && argc <= 5) {
    // Trailing command options: [--prom] [--perf], any order.
    bool prom = false;
    bool perf = false;
    bool bad = false;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--prom") == 0) prom = true;
      else if (std::strcmp(argv[i], "--perf") == 0) perf = true;
      else bad = true;
    }
    if (!bad) rc = CmdStats(argv[2], prom, perf);
  }
  else if (command == "gen" && argc == 5) rc = CmdGen(argv[2], argv[3], argv[4]);
  else if (command == "datasets" && argc == 2) rc = CmdDatasets();
  else if (command == "serve-bench" && argc >= 3 && argc <= 8) {
    // Trailing command options: [--requests=N] [--queue=N]
    // [--catalog-bytes-limit=N] [--slow-log=<path>] [--slow-us=N], any order.
    size_t requests = 2000;
    size_t queue = 256;
    size_t cache_bytes = 0;
    std::string slow_log;
    uint64_t slow_us = 0;
    bool bad = false;
    for (int i = 3; i < argc; ++i) {
      if (std::strncmp(argv[i], "--requests=", 11) == 0) {
        const long v = std::atol(argv[i] + 11);
        if (v <= 0) return Fail("bad --requests value", argv[i]);
        requests = static_cast<size_t>(v);
      } else if (std::strncmp(argv[i], "--queue=", 8) == 0) {
        const long v = std::atol(argv[i] + 8);
        if (v <= 0) return Fail("bad --queue value", argv[i]);
        queue = static_cast<size_t>(v);
      } else if (std::strncmp(argv[i], "--catalog-bytes-limit=", 22) == 0) {
        const long long v = std::atoll(argv[i] + 22);
        if (v < 0) return Fail("bad --catalog-bytes-limit value", argv[i]);
        cache_bytes = static_cast<size_t>(v);  // 0 = cache off.
      } else if (std::strncmp(argv[i], "--slow-log=", 11) == 0) {
        slow_log = argv[i] + 11;
        if (slow_log.empty()) return Fail("bad --slow-log value", argv[i]);
      } else if (std::strncmp(argv[i], "--slow-us=", 10) == 0) {
        const long long v = std::atoll(argv[i] + 10);
        if (v < 0) return Fail("bad --slow-us value", argv[i]);
        slow_us = static_cast<uint64_t>(v);
      } else {
        bad = true;
      }
    }
    if (!bad) {
      rc = CmdServeBench(argv[2], requests, queue, cache_bytes, slow_log,
                         slow_us);
    }
  }
  if (rc < 0) return Usage();

  if (g_metrics != 0) {
    alp::obs::TraceSink::Emit(alp::obs::MetricRegistry::Global().Snapshot(),
                              g_metrics == 2, std::cout);
  }
  if (!g_trace_path.empty()) {
    alp::obs::StopTracing();
    const alp::Status ts = alp::obs::WriteTraceFile(g_trace_path);
    if (!ts.ok()) return Fail("cannot write trace", ts.ToString());
    std::fprintf(stderr, "trace written to %s (%zu spans)\n",
                 g_trace_path.c_str(),
                 alp::obs::CollectTraceSpans().size());
  }
  return rc;
}
